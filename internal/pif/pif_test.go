package pif

import (
	"strings"
	"testing"
	"testing/quick"

	"clare/internal/parse"
	"clare/internal/symtab"
	"clare/internal/term"
	"clare/internal/unify"
)

func encDec(t *testing.T) (*Encoder, *Decoder) {
	t.Helper()
	syms := symtab.New()
	return NewEncoder(syms), NewDecoder(syms)
}

// TestTableA1TagValues pins the tag constants to the exact values in the
// paper's Appendix 1, Table A1.
func TestTableA1TagValues(t *testing.T) {
	cases := []struct {
		name string
		got  Tag
		want uint8
	}{
		{"Anonymous Var", TagAnonVar, 0x20},
		{"First Query Var", TagFirstQV, 0x27},
		{"Subsequent Query Var", TagSubQV, 0x25},
		{"First DB Var", TagFirstDV, 0x26},
		{"Subsequent DB Var", TagSubDV, 0x24},
		{"Atom Pointer", TagAtomPtr, 0x08},
		{"Float Pointer", TagFloatPtr, 0x09},
		{"Integer In-line base", Tag(TagIntBase), 0x10},
		{"Structure In-line group (011x xxxx)", GroupStructInline, 0x60},
		{"Structure Pointer group (010x xxxx)", GroupStructPtr, 0x40},
		{"Terminated List In-line group (111x xxxx)", GroupListInline, 0xE0},
		{"Unterminated List In-line group (101x xxxx)", GroupUListInline, 0xA0},
		{"Terminated List Pointer group (110x xxxx)", GroupListPtr, 0xC0},
		{"Unterminated List Pointer group (100x xxxx)", GroupUListPtr, 0x80},
	}
	for _, c := range cases {
		if uint8(c.got) != c.want {
			t.Errorf("%s: tag = 0x%02x, want 0x%02x", c.name, uint8(c.got), c.want)
		}
	}
}

func TestCategoriesMatchAppendix(t *testing.T) {
	// Appendix 1 divides types into variables, simple terms, complex terms.
	varTags := []Tag{TagAnonVar, TagFirstQV, TagSubQV, TagFirstDV, TagSubDV}
	for _, tag := range varTags {
		if CategoryOf(tag) != CatVariable {
			t.Errorf("tag 0x%02x should be variable", uint8(tag))
		}
	}
	simple := []Tag{TagAtomPtr, TagFloatPtr, Tag(TagIntBase), Tag(TagIntBase) | 0x0F}
	for _, tag := range simple {
		if CategoryOf(tag) != CatSimple {
			t.Errorf("tag 0x%02x should be simple", uint8(tag))
		}
	}
	complexTags := []Tag{
		GroupStructInline | 3, GroupStructPtr, GroupListInline | 1,
		GroupUListInline | 2, GroupListPtr | 4, GroupUListPtr,
	}
	for _, tag := range complexTags {
		if CategoryOf(tag) != CatComplex {
			t.Errorf("tag 0x%02x should be complex", uint8(tag))
		}
	}
}

func TestEncodeGroundFact(t *testing.T) {
	enc, _ := encDec(t)
	e, err := enc.Encode(parse.MustTerm("likes(mary, 42)"), DBSide)
	if err != nil {
		t.Fatal(err)
	}
	if e.Functor != "likes" || e.Arity != 2 {
		t.Fatalf("indicator = %s", e.Indicator())
	}
	if len(e.Args) != 2 || len(e.Heap) != 0 {
		t.Fatalf("words = %d args %d heap", len(e.Args), len(e.Heap))
	}
	if e.Args[0].Tag() != TagAtomPtr {
		t.Errorf("arg0 tag = %s", TagName(e.Args[0].Tag()))
	}
	if !IsInt(e.Args[1].Tag()) {
		t.Errorf("arg1 tag = %s", TagName(e.Args[1].Tag()))
	}
}

func TestVariableTagsPerSide(t *testing.T) {
	enc, _ := encDec(t)
	q := parse.MustTerm("p(X, Y, X, _)")
	eq, err := enc.Encode(q, QuerySide)
	if err != nil {
		t.Fatal(err)
	}
	wantQ := []Tag{TagFirstQV, TagFirstQV, TagSubQV, TagAnonVar}
	for i, w := range eq.Args {
		if w.Tag() != wantQ[i] {
			t.Errorf("query arg %d tag = %s, want %s", i, TagName(w.Tag()), TagName(wantQ[i]))
		}
	}
	// First and subsequent occurrences share the content (slot) field —
	// "the subsequent occurrences and the first occurrence of a variable
	// have the same content field" (§3.1).
	if eq.Args[0].Content() != eq.Args[2].Content() {
		t.Error("first/subsequent occurrence content fields differ")
	}
	if eq.NumVars != 2 {
		t.Errorf("NumVars = %d, want 2", eq.NumVars)
	}

	ec, err := enc.Encode(parse.MustTerm("p(A, A)"), DBSide)
	if err != nil {
		t.Fatal(err)
	}
	if ec.Args[0].Tag() != TagFirstDV || ec.Args[1].Tag() != TagSubDV {
		t.Errorf("db var tags = %s, %s", TagName(ec.Args[0].Tag()), TagName(ec.Args[1].Tag()))
	}
}

func TestIntegerInlineEncoding(t *testing.T) {
	enc, dec := encDec(t)
	for _, v := range []int64{0, 1, -1, 1000, -1000, MaxInlineInt, MinInlineInt} {
		e, err := enc.Encode(term.New("i", term.Int(v)), DBSide)
		if err != nil {
			t.Fatalf("encode %d: %v", v, err)
		}
		got, err := dec.Decode(e)
		if err != nil {
			t.Fatalf("decode %d: %v", v, err)
		}
		if got.(*term.Compound).Args[0] != term.Int(v) {
			t.Errorf("round trip %d = %v", v, got)
		}
	}
	// Out of range must error, not truncate.
	if _, err := enc.Encode(term.New("i", term.Int(MaxInlineInt+1)), DBSide); err == nil {
		t.Error("out-of-range int should fail to encode")
	}
	// The tag nibble is the value's most significant nibble (Table A1).
	e, _ := enc.Encode(term.New("i", term.Int(0x0ABCDEF)), DBSide)
	w := e.Args[0]
	if w.Tag() != Tag(TagIntBase)|0x0 || w.Content() != 0xABCDEF {
		t.Errorf("0x0ABCDEF encoded as tag 0x%02x content 0x%06x", uint8(w.Tag()), w.Content())
	}
}

func TestStructureInline(t *testing.T) {
	enc, _ := encDec(t)
	e, err := enc.Encode(parse.MustTerm("p(point(1, 2, 3))"), DBSide)
	if err != nil {
		t.Fatal(err)
	}
	// Header word + 3 element words.
	if len(e.Args) != 4 {
		t.Fatalf("arg words = %d, want 4", len(e.Args))
	}
	h := e.Args[0]
	if Group(h.Tag()) != GroupStructInline || InlineArity(h.Tag()) != 3 {
		t.Errorf("header = %s", TagName(h.Tag()))
	}
}

func TestNestedStructureGoesToHeap(t *testing.T) {
	enc, dec := encDec(t)
	src := "p(f(g(h(1)), 2))"
	e, err := enc.Encode(parse.MustTerm(src), DBSide)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Heap) == 0 {
		t.Error("nested structure should use the heap")
	}
	got, err := dec.Decode(e)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "p(f(g(h(1)),2))" {
		t.Errorf("round trip = %v", got)
	}
}

func TestLists(t *testing.T) {
	enc, dec := encDec(t)
	for _, src := range []string{
		"p([])", "p([a])", "p([a,b,c])", "p([a|T])", "p([a,b|T])",
		"p([[1,2],[3]])", "p([f(x), [y|Z]])",
	} {
		e, err := enc.Encode(parse.MustTerm(src), DBSide)
		if err != nil {
			t.Fatalf("encode %s: %v", src, err)
		}
		got, err := dec.Decode(e)
		if err != nil {
			t.Fatalf("decode %s: %v", src, err)
		}
		want := parse.MustTerm(src)
		if !unify.Unifiable(got, want) || term.Size(unify.Resolve(got)) != term.Size(want) {
			t.Errorf("round trip %s = %v", src, got)
		}
	}
}

func TestEmptyListIsAtom(t *testing.T) {
	enc, _ := encDec(t)
	e, err := enc.Encode(parse.MustTerm("p([])"), DBSide)
	if err != nil {
		t.Fatal(err)
	}
	if e.Args[0].Tag() != TagAtomPtr {
		t.Errorf("[] should encode as an atom pointer, got %s", TagName(e.Args[0].Tag()))
	}
}

func TestUnterminatedListTags(t *testing.T) {
	enc, _ := encDec(t)
	e, err := enc.Encode(parse.MustTerm("p([a,b|T])"), DBSide)
	if err != nil {
		t.Fatal(err)
	}
	h := e.Args[0]
	if Group(h.Tag()) != GroupUListInline || InlineArity(h.Tag()) != 2 {
		t.Errorf("header = %s", TagName(h.Tag()))
	}
	if !IsUnterminated(h.Tag()) || !IsList(h.Tag()) {
		t.Error("classification of unterminated list failed")
	}
	// Elements a, b then the tail variable word.
	if len(e.Args) != 4 {
		t.Fatalf("words = %d, want 4", len(e.Args))
	}
	if e.Args[3].Tag() != TagFirstDV {
		t.Errorf("tail word = %s", TagName(e.Args[3].Tag()))
	}
}

func TestLargeArityUsesPointerForm(t *testing.T) {
	enc, dec := encDec(t)
	// Structure with arity 35 > 31.
	args := make([]term.Term, 35)
	for i := range args {
		args[i] = term.Int(int64(i))
	}
	big := term.New("big", args...)
	e, err := enc.Encode(term.New("p", big), DBSide)
	if err != nil {
		t.Fatal(err)
	}
	if Group(e.Args[0].Tag()) != GroupStructPtr {
		t.Fatalf("arity-35 structure not pointer form: %s", TagName(e.Args[0].Tag()))
	}
	if len(e.Args) != 2 {
		t.Fatalf("structure pointer should be 2 words, got %d", len(e.Args))
	}
	got, err := dec.Decode(e)
	if err != nil {
		t.Fatal(err)
	}
	if term.Size(got) != term.Size(term.New("p", big)) {
		t.Errorf("round trip lost elements: %v", got)
	}

	// Long list > 31 elements.
	elems := make([]term.Term, 40)
	for i := range elems {
		elems[i] = term.Atom("e")
	}
	e2, err := enc.Encode(term.New("p", term.List(elems...)), DBSide)
	if err != nil {
		t.Fatal(err)
	}
	if Group(e2.Args[0].Tag()) != GroupListPtr {
		t.Fatalf("40-list not pointer form: %s", TagName(e2.Args[0].Tag()))
	}
	got2, err := dec.Decode(e2)
	if err != nil {
		t.Fatal(err)
	}
	gl, _ := term.ListSlice(got2.(*term.Compound).Args[0])
	if len(gl) != 40 {
		t.Errorf("round trip list length = %d", len(gl))
	}
}

func TestVarSlotLimit(t *testing.T) {
	enc, _ := encDec(t)
	args := make([]term.Term, MaxVarSlots+1)
	for i := range args {
		args[i] = term.NewVar("V")
	}
	// Arity limit is 255 in the record; use a list to hold the variables.
	_, err := enc.Encode(term.New("p", term.List(args...)), DBSide)
	if err == nil {
		t.Error("should exceed the variable slot limit")
	}
}

func TestAtomicTermEncode(t *testing.T) {
	enc, dec := encDec(t)
	e, err := enc.Encode(term.Atom("standalone"), DBSide)
	if err != nil {
		t.Fatal(err)
	}
	if e.Arity != 0 || len(e.Args) != 0 {
		t.Errorf("atom encoding = %v", e)
	}
	got, err := dec.Decode(e)
	if err != nil || got != term.Atom("standalone") {
		t.Errorf("decode = %v, %v", got, err)
	}
	if _, err := enc.Encode(term.Int(3), DBSide); err == nil {
		t.Error("bare integer is not callable")
	}
}

func TestFloats(t *testing.T) {
	enc, dec := encDec(t)
	e, err := enc.Encode(parse.MustTerm("p(3.25, -0.5)"), DBSide)
	if err != nil {
		t.Fatal(err)
	}
	if e.Args[0].Tag() != TagFloatPtr {
		t.Errorf("float tag = %s", TagName(e.Args[0].Tag()))
	}
	got, err := dec.Decode(e)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "p(3.25,-0.5)" {
		t.Errorf("round trip = %v", got)
	}
}

func TestSharedVariableAcrossNesting(t *testing.T) {
	enc, dec := encDec(t)
	src := "p(X, f(X), [X|X])"
	e, err := enc.Encode(parse.MustTerm(src), DBSide)
	if err != nil {
		t.Fatal(err)
	}
	if e.NumVars != 1 {
		t.Fatalf("NumVars = %d, want 1", e.NumVars)
	}
	got, err := dec.Decode(e)
	if err != nil {
		t.Fatal(err)
	}
	if !term.HasSharedVars(got) {
		t.Error("decoded term lost variable sharing")
	}
	vs := term.Vars(got, nil)
	if len(vs) != 1 {
		t.Errorf("decoded term has %d distinct vars, want 1", len(vs))
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	enc, dec := encDec(t)
	for _, src := range []string{
		"f(a, 1, 2.5, X, [a,b|T], g(h(i)))",
		"married_couple(S, S)",
		"p",
	} {
		e, err := enc.Encode(parse.MustTerm(src), QuerySide)
		if err != nil {
			t.Fatalf("encode %s: %v", src, err)
		}
		data, err := e.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal %s: %v", src, err)
		}
		var e2 Encoded
		if err := e2.UnmarshalBinary(data); err != nil {
			t.Fatalf("unmarshal %s: %v", src, err)
		}
		if e2.Indicator() != e.Indicator() || e2.NumVars != e.NumVars ||
			len(e2.Args) != len(e.Args) || len(e2.Heap) != len(e.Heap) {
			t.Fatalf("record mismatch for %s", src)
		}
		for i := range e.Args {
			if e2.Args[i] != e.Args[i] {
				t.Fatalf("arg word %d differs", i)
			}
		}
		got, err := dec.Decode(&e2)
		if err != nil {
			t.Fatalf("decode unmarshalled %s: %v", src, err)
		}
		if !unify.Unifiable(got, parse.MustTerm(src)) {
			t.Errorf("round trip %s = %v", src, got)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var e Encoded
	if err := e.UnmarshalBinary([]byte{0x00, 0x01}); err == nil {
		t.Error("bad magic should fail")
	}
	enc, _ := encDec(t)
	good, _ := enc.Encode(parse.MustTerm("f(a,b)"), DBSide)
	data, _ := good.MarshalBinary()
	if err := e.UnmarshalBinary(data[:len(data)-2]); err == nil {
		t.Error("truncated record should fail")
	}
	if err := e.UnmarshalBinary(append(data, 0)); err == nil {
		t.Error("trailing bytes should fail")
	}
}

func TestSizeBytes(t *testing.T) {
	enc, _ := encDec(t)
	e, _ := enc.Encode(parse.MustTerm("f(a, b, c)"), DBSide)
	if e.SizeBytes() != 12 {
		t.Errorf("SizeBytes = %d, want 12 (3 words)", e.SizeBytes())
	}
}

// Property: encode→decode is unification-equivalent to the original for a
// family of generated terms.
func TestQuickRoundTrip(t *testing.T) {
	enc, dec := encDec(t)
	f := func(seed uint16) bool {
		orig := term.New("q", genTerm(int(seed), 0), genTerm(int(seed)/7, 3))
		e, err := enc.Encode(orig, DBSide)
		if err != nil {
			return false
		}
		got, err := dec.Decode(e)
		if err != nil {
			return false
		}
		return unify.Unifiable(got, orig) && term.Size(got) == term.Size(orig) &&
			term.Depth(got) == term.Depth(orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: marshalled records survive the binary round trip exactly.
func TestQuickMarshalRoundTrip(t *testing.T) {
	enc, _ := encDec(t)
	f := func(seed uint16) bool {
		orig := term.New("q", genTerm(int(seed), 1))
		e, err := enc.Encode(orig, QuerySide)
		if err != nil {
			return false
		}
		data, err := e.MarshalBinary()
		if err != nil {
			return false
		}
		var e2 Encoded
		if err := e2.UnmarshalBinary(data); err != nil {
			return false
		}
		if len(e2.Args) != len(e.Args) {
			return false
		}
		for i := range e.Args {
			if e2.Args[i] != e.Args[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// genTerm builds a small deterministic term from a seed, covering all PIF
// categories.
func genTerm(seed, salt int) term.Term {
	switch (seed + salt) % 8 {
	case 0:
		return term.Atom([]string{"a", "b", "c"}[seed%3])
	case 1:
		return term.Int(int64(seed%100 - 50))
	case 2:
		return term.Float(float64(seed) / 4)
	case 3:
		return term.NewVar("V")
	case 4:
		return term.New("f", genTerm(seed/2, salt+1))
	case 5:
		return term.List(genTerm(seed/2, salt+1), genTerm(seed/3, salt+2))
	case 6:
		return term.ListTail(term.NewVar("T"), genTerm(seed/2, salt+1))
	default:
		return term.New("g", genTerm(seed/2, salt+1), genTerm(seed/5, salt+2), term.Int(int64(salt)))
	}
}

func TestTagClassifiers(t *testing.T) {
	if !IsComplex(GroupStructInline|2) || IsComplex(TagAtomPtr) {
		t.Error("IsComplex misclassifies")
	}
	if !IsStruct(GroupStructPtr|3) || IsStruct(GroupListInline|1) {
		t.Error("IsStruct misclassifies")
	}
	if !IsPointer(GroupListPtr|2) || !IsPointer(GroupUListPtr) || !IsPointer(GroupStructPtr) {
		t.Error("IsPointer misses pointer groups")
	}
	if IsPointer(GroupStructInline | 1) {
		t.Error("in-line tag classified as pointer")
	}
	if WordLen(GroupStructPtr|1) != 2 || WordLen(TagAtomPtr) != 1 || WordLen(GroupListPtr|3) != 1 {
		t.Error("WordLen wrong")
	}
}

func TestTagNames(t *testing.T) {
	cases := map[Tag]string{
		TagAnonVar:            "AnonVar",
		TagFirstQV:            "FirstQV",
		TagSubQV:              "SubQV",
		TagFirstDV:            "FirstDV",
		TagSubDV:              "SubDV",
		TagAtomPtr:            "AtomPtr",
		TagFloatPtr:           "FloatPtr",
		Tag(TagIntBase) | 5:   "IntInline",
		GroupStructInline | 4: "StructInline/4",
		GroupStructPtr | 2:    "StructPtr/2",
		GroupListInline | 7:   "ListInline/7",
		GroupUListInline | 1:  "UListInline/1",
		GroupListPtr | 9:      "ListPtr/9",
		GroupUListPtr | 3:     "UListPtr/3",
	}
	for tag, want := range cases {
		if got := TagName(tag); got != want {
			t.Errorf("TagName(0x%02x) = %q, want %q", uint8(tag), got, want)
		}
	}
	if TagName(0x00) == "" {
		t.Error("unknown tag should still name itself")
	}
	if CategoryOf(0x00) != CatInvalid || CatInvalid.String() != "invalid" {
		t.Error("invalid category handling")
	}
	for _, c := range []Category{CatSimple, CatVariable, CatComplex} {
		if c.String() == "" || c.String() == "invalid" {
			t.Errorf("category %d string = %q", c, c.String())
		}
	}
}

func TestEncodedStringDisassembly(t *testing.T) {
	enc, _ := encDec(t)
	e, err := enc.Encode(parse.MustTerm("p(a, X, f(g(1)), [u|T])"), DBSide)
	if err != nil {
		t.Fatal(err)
	}
	s := e.String()
	for _, want := range []string{"p/4", "AtomPtr", "FirstDV", "StructInline/1", "UListInline/1", "heap["} {
		if !strings.Contains(s, want) {
			t.Errorf("disassembly missing %q:\n%s", want, s)
		}
	}
}
