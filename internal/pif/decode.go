package pif

import (
	"fmt"

	"clare/internal/symtab"
	"clare/internal/term"
)

// Decoder reconstructs terms from PIF against the symbol table used at
// encode time. Decoding is used by the software search mode (the CRS doing
// everything itself, §2.2 mode (a)) and by the test suite's round-trip
// properties.
type Decoder struct {
	Symbols *symtab.Table
}

// NewDecoder returns a decoder resolving symbols from symbols.
func NewDecoder(symbols *symtab.Table) *Decoder { return &Decoder{Symbols: symbols} }

type decodeState struct {
	d    *Decoder
	e    *Encoded
	vars []*term.Var // slot -> variable
}

// Decode reconstructs the callable term from e. Variables regain their
// source names; each anonymous-variable word becomes a fresh variable.
func (d *Decoder) Decode(e *Encoded) (term.Term, error) {
	st := &decodeState{d: d, e: e, vars: make([]*term.Var, e.NumVars)}
	args := make([]term.Term, 0, e.Arity)
	pos := 0
	for i := 0; i < e.Arity; i++ {
		t, next, err := st.decodeAt(e.Args, pos)
		if err != nil {
			return nil, fmt.Errorf("pif: decoding arg %d of %s/%d: %w", i, e.Functor, e.Arity, err)
		}
		args = append(args, t)
		pos = next
	}
	if pos != len(e.Args) {
		return nil, fmt.Errorf("pif: %d trailing words after %s/%d", len(e.Args)-pos, e.Functor, e.Arity)
	}
	return term.New(e.Functor, args...), nil
}

// decodeAt decodes the term starting at words[pos], returning it and the
// index of the next word.
func (st *decodeState) decodeAt(words []Word, pos int) (term.Term, int, error) {
	if pos >= len(words) {
		return nil, 0, fmt.Errorf("truncated stream at word %d", pos)
	}
	w := words[pos]
	tag := w.Tag()

	switch {
	case tag == TagAnonVar:
		return term.NewVar("_"), pos + 1, nil

	case IsVariable(tag):
		slot := int(w.Content())
		if slot >= len(st.vars) {
			return nil, 0, fmt.Errorf("variable slot %d out of range (%d slots)", slot, len(st.vars))
		}
		if st.vars[slot] == nil {
			name := "_V"
			if slot < len(st.e.VarNames) {
				name = st.e.VarNames[slot]
			}
			st.vars[slot] = term.NewVar(name)
		}
		return st.vars[slot], pos + 1, nil

	case tag == TagAtomPtr:
		name, err := st.d.Symbols.Name(symtab.Ref(w.Content()))
		if err != nil {
			return nil, 0, err
		}
		return term.Atom(name), pos + 1, nil

	case tag == TagFloatPtr:
		v, err := st.d.Symbols.FloatValue(symtab.Ref(w.Content()))
		if err != nil {
			return nil, 0, err
		}
		return term.Float(v), pos + 1, nil

	case IsInt(tag):
		raw := uint32(tag&0x0F)<<24 | w.Content()
		// Sign-extend from bit 27.
		v := int32(raw << 4)
		return term.Int(v >> 4), pos + 1, nil

	case Group(tag) == GroupStructInline:
		arity := InlineArity(tag)
		name, err := st.d.Symbols.Name(symtab.Ref(w.Content()))
		if err != nil {
			return nil, 0, err
		}
		args := make([]term.Term, 0, arity)
		p := pos + 1
		for i := 0; i < arity; i++ {
			var a term.Term
			a, p, err = st.decodeAt(words, p)
			if err != nil {
				return nil, 0, err
			}
			args = append(args, a)
		}
		return term.New(name, args...), p, nil

	case Group(tag) == GroupListInline, Group(tag) == GroupUListInline:
		arity := InlineArity(tag)
		elems := make([]term.Term, 0, arity)
		p := pos + 1
		var err error
		for i := 0; i < arity; i++ {
			var e term.Term
			e, p, err = st.decodeAt(words, p)
			if err != nil {
				return nil, 0, err
			}
			elems = append(elems, e)
		}
		tail := term.Term(term.NilAtom)
		if Group(tag) == GroupUListInline {
			tail, p, err = st.decodeAt(words, p)
			if err != nil {
				return nil, 0, err
			}
		}
		return term.ListTail(tail, elems...), p, nil

	case Group(tag) == GroupStructPtr:
		if pos+1 >= len(words) {
			return nil, 0, fmt.Errorf("structure pointer missing extension at word %d", pos)
		}
		off := uint32(words[pos+1])
		t, err := st.decodeHeapStruct(off)
		if err != nil {
			return nil, 0, err
		}
		return t, pos + 2, nil

	case Group(tag) == GroupListPtr, Group(tag) == GroupUListPtr:
		t, err := st.decodeHeapList(w.Content(), Group(tag) == GroupUListPtr)
		if err != nil {
			return nil, 0, err
		}
		return t, pos + 1, nil
	}
	return nil, 0, fmt.Errorf("invalid tag 0x%02x at word %d", uint8(tag), pos)
}

func (st *decodeState) decodeHeapStruct(off uint32) (term.Term, error) {
	heap := st.e.Heap
	if int(off)+1 >= len(heap) {
		return nil, fmt.Errorf("heap structure offset %d out of range", off)
	}
	arity := int(heap[off])
	fw := heap[off+1]
	name, err := st.d.Symbols.Name(symtab.Ref(fw.Content()))
	if err != nil {
		return nil, err
	}
	args := make([]term.Term, 0, arity)
	p := int(off) + 2
	for i := 0; i < arity; i++ {
		var a term.Term
		a, p, err = st.decodeAt(heap, p)
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	return term.New(name, args...), nil
}

func (st *decodeState) decodeHeapList(off uint32, unterminated bool) (term.Term, error) {
	heap := st.e.Heap
	if int(off) >= len(heap) {
		return nil, fmt.Errorf("heap list offset %d out of range", off)
	}
	n := int(heap[off])
	elems := make([]term.Term, 0, n)
	p := int(off) + 1
	var err error
	for i := 0; i < n; i++ {
		var e term.Term
		e, p, err = st.decodeAt(heap, p)
		if err != nil {
			return nil, err
		}
		elems = append(elems, e)
	}
	tail := term.Term(term.NilAtom)
	if unterminated {
		tail, _, err = st.decodeAt(heap, p)
		if err != nil {
			return nil, err
		}
	}
	return term.ListTail(tail, elems...), nil
}
