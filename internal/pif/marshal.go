package pif

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Binary record layout for a compiled clause as stored on (simulated) disk
// and streamed into the FS2 Double Buffer. All integers are big-endian.
//
//	magic      uint16  0xC1A5 ("clause")
//	side       uint8
//	arity      uint8
//	functorLen uint16
//	numVars    uint16
//	numArgs    uint32  (words)
//	numHeap    uint32  (words)
//	functor    [functorLen]byte
//	varNames   numVars x {uint16 len, bytes}
//	args       numArgs x uint32
//	heap       numHeap x uint32

const recordMagic = 0xC1A5

// MarshalBinary serialises the encoded clause to its on-disk record form.
func (e *Encoded) MarshalBinary() ([]byte, error) {
	if len(e.Functor) > 0xFFFF {
		return nil, fmt.Errorf("pif: functor too long (%d bytes)", len(e.Functor))
	}
	if e.Arity > 0xFF {
		return nil, fmt.Errorf("pif: arity %d exceeds record limit", e.Arity)
	}
	if e.NumVars > 0xFFFF {
		return nil, fmt.Errorf("pif: too many variables (%d)", e.NumVars)
	}
	size := 2 + 1 + 1 + 2 + 2 + 4 + 4 + len(e.Functor)
	for _, n := range e.VarNames {
		size += 2 + len(n)
	}
	size += 4 * (len(e.Args) + len(e.Heap))

	buf := make([]byte, 0, size)
	var tmp [4]byte
	put16 := func(v uint16) {
		binary.BigEndian.PutUint16(tmp[:2], v)
		buf = append(buf, tmp[:2]...)
	}
	put32 := func(v uint32) {
		binary.BigEndian.PutUint32(tmp[:4], v)
		buf = append(buf, tmp[:4]...)
	}
	put16(recordMagic)
	buf = append(buf, byte(e.Side), byte(e.Arity))
	put16(uint16(len(e.Functor)))
	put16(uint16(e.NumVars))
	put32(uint32(len(e.Args)))
	put32(uint32(len(e.Heap)))
	buf = append(buf, e.Functor...)
	for _, n := range e.VarNames {
		put16(uint16(len(n)))
		buf = append(buf, n...)
	}
	for _, w := range e.Args {
		put32(uint32(w))
	}
	for _, w := range e.Heap {
		put32(uint32(w))
	}
	return buf, nil
}

// UnmarshalBinary parses a record produced by MarshalBinary.
func (e *Encoded) UnmarshalBinary(data []byte) error {
	return e.unmarshalBinary(data, nil)
}

// UnmarshalBinaryInto parses a record with the word slices taken from
// slab — the store layer's batched decode, which shares one arena across
// all of a predicate's records.
func (e *Encoded) UnmarshalBinaryInto(data []byte, slab *Slab) error {
	return e.unmarshalBinary(data, slab)
}

func allocWords(slab *Slab, n int) []Word {
	if slab == nil {
		return make([]Word, n)
	}
	return slab.Take(n)
}

func (e *Encoded) unmarshalBinary(data []byte, slab *Slab) error {
	r := reader{data: data}
	if m := r.u16(); m != recordMagic {
		return fmt.Errorf("pif: bad record magic 0x%04x", m)
	}
	e.Side = Side(r.u8())
	e.Arity = int(r.u8())
	funLen := int(r.u16())
	e.NumVars = int(r.u16())
	nArgs := int(r.u32())
	nHeap := int(r.u32())
	fun := r.bytes(funLen)
	if r.err != nil {
		return r.err
	}
	// Every word occupies 4 bytes of the record, so the claimed counts
	// are bounded by the data in hand — reject before allocating, or a
	// corrupt record costs gigabytes instead of an error.
	if int64(nArgs)+int64(nHeap) > int64(len(data))/4 {
		return fmt.Errorf("pif: record claims %d+%d words in %d bytes", nArgs, nHeap, len(data))
	}
	e.Functor = string(fun)
	e.VarNames = make([]string, e.NumVars)
	for i := range e.VarNames {
		n := int(r.u16())
		e.VarNames[i] = string(r.bytes(n))
	}
	e.Args = allocWords(slab, nArgs)
	for i := range e.Args {
		e.Args[i] = Word(r.u32())
	}
	e.Heap = allocWords(slab, nHeap)
	for i := range e.Heap {
		e.Heap[i] = Word(r.u32())
	}
	if r.err != nil {
		return r.err
	}
	if r.pos != len(data) {
		return fmt.Errorf("pif: %d trailing bytes in record", len(data)-r.pos)
	}
	return nil
}

type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.pos+n > len(r.data) {
		r.err = fmt.Errorf("pif: truncated record at byte %d", r.pos)
		return false
	}
	return true
}

func (r *reader) u8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.data[r.pos]
	r.pos++
	return v
}

func (r *reader) u16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(r.data[r.pos:])
	r.pos += 2
	return v
}

func (r *reader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v
}

func (r *reader) bytes(n int) []byte {
	if !r.need(n) {
		return nil
	}
	v := r.data[r.pos : r.pos+n]
	r.pos += n
	return v
}

// Indicator returns "functor/arity" for the encoded clause.
func (e *Encoded) Indicator() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%d", e.Functor, e.Arity)
	return b.String()
}
