package pif

// Slab is a bump allocator for PIF words: the store layer decodes a whole
// predicate's records into one shared arena instead of two slices per
// record, so a compiled clause file is a handful of large allocations and
// every Encoded's Args/Heap are views into the slab. Views are full-cap
// sub-slices, so appends can never bleed into a neighbour.
//
// A Slab is not safe for concurrent use; it is a load-time structure.
type Slab struct {
	cur  []Word
	used int
	// TotalWords counts all words handed out across blocks.
	TotalWords int
}

// slabBlockWords is the default block size (256 KiB of words).
const slabBlockWords = 64 * 1024

// NewSlab returns a slab with one pre-sized block. capacityWords may be
// zero: the first Take allocates a default block.
func NewSlab(capacityWords int) *Slab {
	s := &Slab{}
	if capacityWords > 0 {
		s.cur = make([]Word, capacityWords)
	}
	return s
}

// Take returns a zeroed n-word view of the slab. When the current block
// is exhausted a new one is allocated; earlier views keep referencing the
// old block.
func (s *Slab) Take(n int) []Word {
	if n == 0 {
		return nil
	}
	if s.used+n > len(s.cur) {
		blk := slabBlockWords
		if n > blk {
			blk = n
		}
		s.cur = make([]Word, blk)
		s.used = 0
	}
	w := s.cur[s.used : s.used+n : s.used+n]
	s.used += n
	s.TotalWords += n
	return w
}
