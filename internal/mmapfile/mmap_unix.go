//go:build unix

package mmapfile

import (
	"fmt"
	"os"
	"syscall"
)

func mapFile(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return &Mapping{}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("mmapfile: %s: %d bytes exceeds address space", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mmapfile: mmap %s: %w", path, err)
	}
	return &Mapping{data: data}, nil
}

func unmap(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	return syscall.Munmap(data)
}
