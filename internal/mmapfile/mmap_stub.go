//go:build !unix

package mmapfile

func mapFile(path string) (*Mapping, error) { return nil, ErrUnsupported }

func unmap(data []byte) error { return nil }
