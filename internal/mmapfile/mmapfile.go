// Package mmapfile maps files read-only into memory for the zero-copy
// store path: crsd cold start maps the kbc-built knowledge base and
// decodes predicate word slabs as views into the mapping, paying page-in
// instead of re-decode. On platforms without mmap (or when mapping
// fails) callers fall back to the heap decode path — Map never panics,
// it returns an error the store layer turns into a fallback.
//
// The mapping is read-only (PROT_READ): writing through a view faults,
// which is exactly the contract the store wants — mutations after load
// (WAL replay, asserts) rebuild predicates on the heap and never touch
// the mapped base image.
package mmapfile

import "errors"

// ErrUnsupported reports that this platform has no mmap support; callers
// take the heap path.
var ErrUnsupported = errors.New("mmapfile: not supported on this platform")

// Mapping is one read-only file mapping. The underlying file descriptor
// is closed as soon as the mapping exists (the mapping survives it), so
// a Mapping holds address space only.
type Mapping struct {
	data []byte
}

// Data returns the mapped bytes. The slice is valid until Close; writing
// to it faults.
func (m *Mapping) Data() []byte {
	if m == nil {
		return nil
	}
	return m.data
}

// Map maps path read-only. An empty file maps to an empty Data slice.
func Map(path string) (*Mapping, error) { return mapFile(path) }

// Close unmaps the file. Views into Data must not be used afterwards.
func (m *Mapping) Close() error {
	if m == nil || m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	return unmap(data)
}
