package hw

import (
	"strings"
	"testing"
	"time"
)

func TestComponentDelaysMatchFigures(t *testing.T) {
	// The delays the figures' route tables use.
	cases := []struct {
		c    Component
		want time.Duration
	}{
		{DoubleBuffer, 20 * time.Nanosecond},
		{Sel1, 20 * time.Nanosecond},
		{Sel6, 20 * time.Nanosecond},
		{QueryMemRead, 35 * time.Nanosecond},
		{DBMemRead, 25 * time.Nanosecond},
		{DBMemWrite, 20 * time.Nanosecond},
		{QueryMemWrite, 35 * time.Nanosecond},
		{Reg1, 20 * time.Nanosecond},
		{Reg3, 20 * time.Nanosecond},
		{Comparator, 30 * time.Nanosecond},
	}
	for _, c := range cases {
		if c.c.Delay != c.want {
			t.Errorf("%s delay = %v, want %v", c.c.Name, c.c.Delay, c.want)
		}
	}
}

func TestRouteTime(t *testing.T) {
	// The MATCH database route of Figure 6: Double Buffer → Sel1 = 40 ns.
	r := NewRoute(DoubleBuffer, Sel1)
	if r.Time() != 40*time.Nanosecond {
		t.Errorf("db route = %v, want 40ns", r.Time())
	}
	// The MATCH query route: Sel6 → Query Memory → Sel3 = 75 ns.
	q := NewRoute(Sel6, QueryMemRead, Sel3)
	if q.Time() != 75*time.Nanosecond {
		t.Errorf("query route = %v, want 75ns", q.Time())
	}
}

func TestCycleTakesLongerRoute(t *testing.T) {
	c := Cycle{
		DBRoute:    NewRoute(DoubleBuffer, Sel1),       // 40
		QueryRoute: NewRoute(Sel6, QueryMemRead, Sel3), // 75
	}
	if c.Time() != 75*time.Nanosecond {
		t.Errorf("cycle time = %v, want 75ns (longer route)", c.Time())
	}
	rev := Cycle{DBRoute: c.QueryRoute, QueryRoute: c.DBRoute}
	if rev.Time() != 75*time.Nanosecond {
		t.Errorf("cycle time = %v, want 75ns regardless of side", rev.Time())
	}
}

func TestOperationTimeMatchExample(t *testing.T) {
	// Rebuild Figure 6's MATCH: max(40, 75) + 30 = 105 ns.
	op := Operation{
		Name:   "MATCH",
		Figure: 6,
		Cycles: []Cycle{{
			DBRoute:    NewRoute(DoubleBuffer, Sel1),
			QueryRoute: NewRoute(Sel6, QueryMemRead, Sel3),
		}},
		Final: Comparator,
	}
	if op.Time() != 105*time.Nanosecond {
		t.Errorf("MATCH time = %v, want 105ns", op.Time())
	}
}

func TestMultiCycleOperation(t *testing.T) {
	// Figure 12's QUERY_CROSS_BOUND_FETCH shape: cycles 95 + 65 + 45 + 30.
	op := Operation{
		Name: "QUERY_CROSS_BOUND_FETCH",
		Cycles: []Cycle{
			{Name: "first cycle",
				DBRoute:    NewRoute(DoubleBuffer, Sel1),
				QueryRoute: NewRoute(Sel6, QueryMemRead, Sel3, Sel2)},
			{Name: "second cycle",
				QueryRoute: NewRoute(DBMemRead, Sel3, Sel2)},
			{Name: "third cycle",
				QueryRoute: NewRoute(DBMemRead, Sel3)},
		},
		Final: Comparator,
	}
	if op.Time() != 235*time.Nanosecond {
		t.Errorf("time = %v, want 235ns", op.Time())
	}
}

func TestBreakdownRendering(t *testing.T) {
	op := Operation{
		Name:   "MATCH",
		Figure: 6,
		Cycles: []Cycle{{
			DBRoute:    NewRoute(DoubleBuffer, Sel1),
			QueryRoute: NewRoute(Sel6, QueryMemRead, Sel3),
		}},
		Final: Comparator,
	}
	s := op.Breakdown()
	for _, want := range []string{"MATCH", "Figure 6", "Double Buffer", "execution time = 105ns"} {
		if !strings.Contains(s, want) {
			t.Errorf("breakdown missing %q:\n%s", want, s)
		}
	}
}

func TestEmptyRoute(t *testing.T) {
	var r Route
	if r.Time() != 0 {
		t.Errorf("empty route time = %v", r.Time())
	}
	if r.String() != "(idle)" {
		t.Errorf("empty route string = %q", r.String())
	}
}
