// Package hw models the FS2 datapath components and their propagation
// delays, exactly as the timing calculations under Figures 6–12 do.
//
// Every figure in the paper computes an operation's execution time by
// summing component delays along the database and query routes, taking the
// longer route per microprogram cycle, and adding the terminal action
// (comparison or memory write). This package provides the component
// catalogue and the route arithmetic so that package fs2 can DERIVE
// Table 1 rather than hard-code it.
package hw

import (
	"fmt"
	"strings"
	"time"
)

// Component is one datapath element with its propagation delay.
type Component struct {
	Name  string
	Delay time.Duration
}

// The FS2 component catalogue with the delays used in the paper's figures
// (all values appear in the route tables under Figures 6–12).
var (
	// DoubleBuffer is the Double Buffer output register (20 ns).
	DoubleBuffer = Component{"Double Buffer", 20 * time.Nanosecond}
	// Sel1..Sel6 are the six TUE selectors (20 ns each).
	Sel1 = Component{"Sel1", 20 * time.Nanosecond}
	Sel2 = Component{"Sel2", 20 * time.Nanosecond}
	Sel3 = Component{"Sel3", 20 * time.Nanosecond}
	Sel4 = Component{"Sel4", 20 * time.Nanosecond}
	Sel5 = Component{"Sel5", 20 * time.Nanosecond}
	Sel6 = Component{"Sel6", 20 * time.Nanosecond}
	// QueryMemRead is a Query Memory access (35 ns).
	QueryMemRead = Component{"Query Memory", 35 * time.Nanosecond}
	// QueryMemWrite is a Query Memory write (35 ns; Figure 8's total
	// implies the write costs one memory access).
	QueryMemWrite = Component{"Query Memory write", 35 * time.Nanosecond}
	// DBMemRead is a DB Memory access (25 ns).
	DBMemRead = Component{"DB Memory", 25 * time.Nanosecond}
	// DBMemWrite is a DB Memory write (20 ns, Figure 7).
	DBMemWrite = Component{"DB Memory write", 20 * time.Nanosecond}
	// Reg1 and Reg3 are TUE registers (20 ns).
	Reg1 = Component{"Reg1", 20 * time.Nanosecond}
	Reg3 = Component{"Reg3", 20 * time.Nanosecond}
	// Comparator is the ALS 8-bit comparator (30 ns).
	Comparator = Component{"comparison", 30 * time.Nanosecond}
)

// Route is a data path through consecutive components, as drawn by the
// thick dotted lines in Figures 6–12.
type Route struct {
	Steps []Component
}

// NewRoute builds a route through the given components in order.
func NewRoute(steps ...Component) Route { return Route{Steps: steps} }

// Time is the route's total propagation delay.
func (r Route) Time() time.Duration {
	var t time.Duration
	for _, s := range r.Steps {
		t += s.Delay
	}
	return t
}

// String renders the route like the figures: "Double Buffer → Sel1 (=40ns)".
func (r Route) String() string {
	if len(r.Steps) == 0 {
		return "(idle)"
	}
	names := make([]string, len(r.Steps))
	for i, s := range r.Steps {
		names[i] = fmt.Sprintf("%s %dns", s.Name, s.Delay.Nanoseconds())
	}
	return fmt.Sprintf("%s (=%dns)", strings.Join(names, " → "), r.Time().Nanoseconds())
}

// Cycle is one microprogram cycle: the database and query routes run in
// parallel, so the cycle costs the longer of the two ("although
// information travels on both routes in parallel, the longest routing time
// of the two should be taken", §3.3.1).
type Cycle struct {
	Name       string
	DBRoute    Route
	QueryRoute Route
}

// Time is the cycle's cost: max of the two parallel routes.
func (c Cycle) Time() time.Duration {
	db, q := c.DBRoute.Time(), c.QueryRoute.Time()
	if db > q {
		return db
	}
	return q
}

// Operation is one FS2 hardware operation: one or more cycles plus a
// terminal action (a comparison or a memory write).
type Operation struct {
	Name   string
	Figure int // the paper figure documenting it
	Cycles []Cycle
	Final  Component
}

// Time is the operation's execution time: the sum of cycle times plus the
// terminal action — the formula each figure's caption applies.
func (o Operation) Time() time.Duration {
	t := o.Final.Delay
	for _, c := range o.Cycles {
		t += c.Time()
	}
	return t
}

// Breakdown renders the operation's timing calculation in the style of the
// figures' tables.
func (o Operation) Breakdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Timing Calculation for the %s Operation (Figure %d)\n", o.Name, o.Figure)
	for _, c := range o.Cycles {
		if len(o.Cycles) > 1 {
			fmt.Fprintf(&b, "%s\n", c.Name)
		}
		fmt.Fprintf(&b, "  database route : %s\n", c.DBRoute)
		fmt.Fprintf(&b, "  query route    : %s\n", c.QueryRoute)
	}
	fmt.Fprintf(&b, "  %-15s: (=%dns)\n", o.Final.Name, o.Final.Delay.Nanoseconds())
	fmt.Fprintf(&b, "  execution time = %dns\n", o.Time().Nanoseconds())
	return b.String()
}
