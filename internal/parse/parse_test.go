package parse

import (
	"io"
	"testing"

	"clare/internal/term"
)

func mustParse(t *testing.T, src string) term.Term {
	t.Helper()
	tt, err := Term(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return tt
}

// roundTrip checks src parses and prints as want (canonical form).
func roundTrip(t *testing.T, src, want string) {
	t.Helper()
	got := mustParse(t, src).String()
	if got != want {
		t.Errorf("parse(%q) prints %q, want %q", src, got, want)
	}
}

func TestAtomsAndNumbers(t *testing.T) {
	roundTrip(t, "foo", "foo")
	roundTrip(t, "42", "42")
	roundTrip(t, "-42", "-42")
	roundTrip(t, "3.5", "3.5")
	roundTrip(t, "-3.5", "-3.5")
	roundTrip(t, "'Weird atom'", "'Weird atom'")
	roundTrip(t, "[]", "[]")
	roundTrip(t, "{}", "{}")
}

func TestCompounds(t *testing.T) {
	roundTrip(t, "f(a,b,c)", "f(a,b,c)")
	roundTrip(t, "f(g(h(x)))", "f(g(h(x)))")
	roundTrip(t, "'My F'(a)", "'My F'(a)")
}

func TestLists(t *testing.T) {
	roundTrip(t, "[a,b,c]", "[a,b,c]")
	roundTrip(t, "[a|T]", "[a|T]")
	roundTrip(t, "[a,b|T]", "[a,b|T]")
	roundTrip(t, "[[1,2],[3]]", "[[1,2],[3]]")
	roundTrip(t, "[a|[b,c]]", "[a,b,c]")
}

func TestOperatorPrecedence(t *testing.T) {
	roundTrip(t, "1+2*3", "+(1,*(2,3))")
	roundTrip(t, "(1+2)*3", "*(+(1,2),3)")
	roundTrip(t, "1+2+3", "+(+(1,2),3)") // yfx: left assoc
	roundTrip(t, "a:-b,c", "(a:-(b,c))")
	roundTrip(t, "a,b;c", "((a,b);c)") // ; at 1100 > , at 1000
	roundTrip(t, "a;b,c", "(a;(b,c))")
	roundTrip(t, "X = Y", "=(X,Y)")
	roundTrip(t, "X is 1+2", "is(X,+(1,2))")
	roundTrip(t, "2^3^4", "^(2,^(3,4))") // xfy: right assoc
	if _, err := Term("2**3**4"); err == nil {
		t.Error("xfx '**' should not chain")
	}
}

func TestXFXNonAssociative(t *testing.T) {
	if _, err := Term("a = b = c"); err == nil {
		t.Error("xfx '=' should not chain")
	}
}

func TestPrefixOperators(t *testing.T) {
	roundTrip(t, "- X", "-(X)")
	roundTrip(t, "\\+ a", "\\+(a)")
	roundTrip(t, ":- main", ":-(main)")
	roundTrip(t, "- - X", "-(-(X))") // fy allows nesting
	roundTrip(t, "-(1)", "-(1)")     // parenthesised arg: prefix application of a number
}

func TestPrefixMinusFoldsLiterals(t *testing.T) {
	if got := mustParse(t, "-5"); got != term.Int(-5) {
		t.Errorf("-5 parsed as %v", got)
	}
	if got := mustParse(t, "1 - 2").String(); got != "-(1,2)" {
		t.Errorf("1 - 2 parsed as %q", got)
	}
	// f(-, x): '-' as plain atom argument.
	roundTrip(t, "f(-, x)", "f(-,x)")
}

func TestCommaInArgsVsOperator(t *testing.T) {
	tt := mustParse(t, "f(a,b)")
	c := tt.(*term.Compound)
	if len(c.Args) != 2 {
		t.Fatalf("f(a,b) arity = %d, want 2", len(c.Args))
	}
	// Parenthesised comma term as single argument.
	tt = mustParse(t, "f((a,b))")
	c = tt.(*term.Compound)
	if len(c.Args) != 1 {
		t.Fatalf("f((a,b)) arity = %d, want 1", len(c.Args))
	}
}

func TestVariableScoping(t *testing.T) {
	tt := mustParse(t, "f(X, Y, X)")
	c := tt.(*term.Compound)
	if c.Args[0] != c.Args[2] {
		t.Error("same-name variables should be identical within a clause")
	}
	if c.Args[0] == c.Args[1] {
		t.Error("distinct variables should differ")
	}
	// Anonymous _ is always fresh.
	tt = mustParse(t, "f(_, _)")
	c = tt.(*term.Compound)
	if c.Args[0] == c.Args[1] {
		t.Error("anonymous variables must be distinct")
	}
}

func TestVariableScopePerClause(t *testing.T) {
	p, err := New("f(X). g(X).")
	if err != nil {
		t.Fatal(err)
	}
	t1, err := p.ReadTerm()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := p.ReadTerm()
	if err != nil {
		t.Fatal(err)
	}
	v1 := t1.(*term.Compound).Args[0]
	v2 := t2.(*term.Compound).Args[0]
	if v1 == v2 {
		t.Error("X in different clauses must be different variables")
	}
}

func TestStringsAsCodeLists(t *testing.T) {
	tt := mustParse(t, `"ab"`)
	elems, tail := term.ListSlice(tt)
	if tail != term.NilAtom || len(elems) != 2 ||
		elems[0] != term.Int('a') || elems[1] != term.Int('b') {
		t.Errorf(`"ab" parsed as %v`, tt)
	}
}

func TestCurly(t *testing.T) {
	roundTrip(t, "{a,b}", "{}((a,b))")
}

func TestReadAll(t *testing.T) {
	p, err := New(`
		parent(tom, bob).
		parent(bob, ann).
		grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
	`)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := p.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 {
		t.Fatalf("read %d clauses, want 3", len(ts))
	}
	if ts[2].Indicator() != ":-/2" {
		t.Errorf("rule indicator = %s", ts[2].Indicator())
	}
}

func TestReadTermEOF(t *testing.T) {
	p, err := New("a.")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReadTerm(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReadTerm(); err != io.EOF {
		t.Errorf("expected io.EOF, got %v", err)
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		"f(a",       // unclosed args
		"f(a,)",     // missing arg — ')' can't start a term
		"[a,",       // unclosed list
		"f(a) g(b)", // missing '.' between terms is caught by Term trailing check
		")",
		"a b",
	}
	for _, src := range bad {
		if _, err := Term(src); err == nil {
			t.Errorf("parse(%q) should fail", src)
		}
	}
}

func TestMissingEndDot(t *testing.T) {
	p, err := New("foo(a)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReadTerm(); err == nil {
		t.Error("clause without '.' should fail")
	}
}

func TestDCGArrowAndUnivOps(t *testing.T) {
	roundTrip(t, "a --> b", "-->(a,b)")
	roundTrip(t, "X =.. L", "=..(X,L)")
}

func TestBarAsSemicolonInBody(t *testing.T) {
	roundTrip(t, "(a|b)", "(a;b)")
}

func TestDeepNesting(t *testing.T) {
	src := "f("
	for i := 0; i < 50; i++ {
		src += "g("
	}
	src += "x"
	for i := 0; i < 50; i++ {
		src += ")"
	}
	src += ")"
	tt := mustParse(t, src)
	if d := term.Depth(tt); d != 51 {
		t.Errorf("depth = %d, want 51", d)
	}
}

func TestOpTableMutation(t *testing.T) {
	ops := NewOpTable()
	ops.Add(Op{700, XFX, "~>"})
	p, err := NewWithOps("a ~> b.", ops)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := p.ReadTerm()
	if err != nil {
		t.Fatal(err)
	}
	if tt.Indicator() != "~>/2" {
		t.Errorf("custom op parsed as %s", tt.Indicator())
	}
	// Removal.
	ops.Add(Op{0, XFX, "~>"})
	p2, err := NewWithOps("a ~> b.", ops)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.ReadTerm(); err == nil {
		t.Error("removed operator should no longer parse infix")
	}
}

func TestNamedVarsTracking(t *testing.T) {
	p, err := New("f(X, Y, _Z, _).")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReadTerm(); err != nil {
		t.Fatal(err)
	}
	nv := p.NamedVars()
	if _, ok := nv["X"]; !ok {
		t.Error("X missing from NamedVars")
	}
	if len(p.VarNames) != 2 || p.VarNames[0] != "X" || p.VarNames[1] != "Y" {
		t.Errorf("VarNames = %v, want [X Y]", p.VarNames)
	}
}

func TestMarriedCoupleQueries(t *testing.T) {
	// The §2.1 shared-variable example must parse with shared vars.
	q := mustParse(t, "married_couple(Same, Same)")
	if !term.HasSharedVars(q) {
		t.Error("married_couple(S,S) should have shared variables")
	}
	q2 := mustParse(t, "married_couple(A, B)")
	if term.HasSharedVars(q2) {
		t.Error("married_couple(A,B) should not have shared variables")
	}
}

func TestOpTypeStrings(t *testing.T) {
	want := map[OpType]string{XFX: "xfx", XFY: "xfy", YFX: "yfx", FY: "fy", FX: "fx", XF: "xf", YF: "yf"}
	for ot, s := range want {
		if ot.String() != s {
			t.Errorf("OpType(%d).String() = %q, want %q", ot, ot.String(), s)
		}
	}
	if OpType(99).String() != "op?" {
		t.Error("unknown op type should print op?")
	}
}

func TestParseErrorPosition(t *testing.T) {
	p, errNew := New("a.\nb(]")
	if errNew != nil {
		// Lexer errors are fine too; only check position formatting.
		return
	}
	if _, err := p.ReadTerm(); err != nil {
		t.Fatalf("first clause: %v", err)
	}
	_, err := p.ReadTerm()
	if err == nil {
		t.Fatal("expected syntax error")
	}
	var pe *Error
	if !errorsAs(err, &pe) {
		t.Fatalf("error type = %T", err)
	}
	if pe.Line != 2 {
		t.Errorf("error line = %d, want 2", pe.Line)
	}
	if pe.Error() == "" {
		t.Error("empty error text")
	}
}

// errorsAs is a tiny local stand-in to avoid importing errors for one call.
func errorsAs(err error, target **Error) bool {
	if e, ok := err.(*Error); ok {
		*target = e
		return true
	}
	return false
}

func TestMustTermPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustTerm on bad input should panic")
		}
	}()
	MustTerm("f(")
}

func TestOpsAccessor(t *testing.T) {
	p, err := New("a.")
	if err != nil {
		t.Fatal(err)
	}
	if p.Ops() == nil {
		t.Error("Ops() returned nil")
	}
}
