// Package parse implements an Edinburgh-syntax operator-precedence parser
// producing terms from package term — the reader of the Prolog-X–style
// front end described in §2 of the paper.
package parse

import (
	"fmt"
	"io"
	"strings"

	"clare/internal/lex"
	"clare/internal/term"
)

// Error is a syntax error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("parse: %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Parser reads a sequence of clauses (terms terminated by '.') from source
// text.
type Parser struct {
	toks []lex.Token
	pos  int
	ops  *OpTable
	vars map[string]*term.Var // variable scope of the current clause
	// VarNames records, for the most recently read term, the named
	// variables in first-occurrence order. Useful for answer printing.
	VarNames []string
}

// New returns a parser over src using the standard operator table.
func New(src string) (*Parser, error) { return NewWithOps(src, NewOpTable()) }

// NewWithOps returns a parser over src with a caller-supplied operator
// table (which op/3 directives may mutate between ReadTerm calls).
func NewWithOps(src string, ops *OpTable) (*Parser, error) {
	toks, err := lex.New(src).All()
	if err != nil {
		return nil, err
	}
	return &Parser{toks: toks, ops: ops}, nil
}

// Ops exposes the operator table, letting the engine implement op/3.
func (p *Parser) Ops() *OpTable { return p.ops }

func (p *Parser) peek() lex.Token { return p.toks[p.pos] }

func (p *Parser) next() lex.Token {
	t := p.toks[p.pos]
	if t.Kind != lex.EOF {
		p.pos++
	}
	return t
}

func (p *Parser) errf(t lex.Token, format string, args ...any) error {
	return &Error{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

// ReadTerm reads the next clause (a term followed by '.'). At end of input
// it returns io.EOF.
func (p *Parser) ReadTerm() (term.Term, error) {
	if p.peek().Kind == lex.EOF {
		return nil, io.EOF
	}
	p.vars = make(map[string]*term.Var)
	p.VarNames = p.VarNames[:0]
	t, err := p.parse(1200)
	if err != nil {
		return nil, err
	}
	end := p.next()
	if end.Kind != lex.End {
		return nil, p.errf(end, "expected '.' to end clause, found %v", end)
	}
	return t, nil
}

// ReadAll reads every clause in the input.
func (p *Parser) ReadAll() ([]term.Term, error) {
	var out []term.Term
	for {
		t, err := p.ReadTerm()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}

// Term parses a single source string holding exactly one term (no trailing
// '.').  Convenience for tests and query building.
func Term(src string) (term.Term, error) {
	p, err := New(src)
	if err != nil {
		return nil, err
	}
	p.vars = make(map[string]*term.Var)
	t, err := p.parse(1200)
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != lex.EOF && p.peek().Kind != lex.End {
		return nil, p.errf(p.peek(), "trailing tokens after term")
	}
	return t, nil
}

// MustTerm is Term but panics on error; for literals in tests and examples.
func MustTerm(src string) term.Term {
	t, err := Term(src)
	if err != nil {
		panic(err)
	}
	return t
}

// parse reads a term whose priority does not exceed maxPrec.
func (p *Parser) parse(maxPrec int) (term.Term, error) {
	left, leftPrec, err := p.parsePrimary(maxPrec)
	if err != nil {
		return nil, err
	}
	return p.parseInfix(left, leftPrec, maxPrec)
}

// parseInfix folds infix/postfix operators onto left while they fit under
// maxPrec.
func (p *Parser) parseInfix(left term.Term, leftPrec, maxPrec int) (term.Term, error) {
	for {
		t := p.peek()
		var name string
		switch {
		case t.Kind == lex.AtomTok:
			name = t.Text
		case t.Kind == lex.Punct && (t.Text == ","):
			name = ","
		case t.Kind == lex.Punct && (t.Text == "|"):
			// '|' as an infix is ';' in bodies; only valid inside no
			// bracket context — treated as ';' per tradition.
			name = "|"
		default:
			return left, nil
		}

		if op, ok := p.ops.Infix(name); ok {
			la, ra := argPriorities(op)
			if op.Priority <= maxPrec && leftPrec <= la {
				p.next()
				fun := name
				if name == "|" {
					fun = ";"
				}
				right, err := p.parse(ra)
				if err != nil {
					return nil, err
				}
				left = term.New(fun, left, right)
				leftPrec = op.Priority
				continue
			}
		}
		if op, ok := p.ops.Postfix(name); ok {
			la, _ := argPriorities(op)
			if op.Priority <= maxPrec && leftPrec <= la {
				p.next()
				left = term.New(name, left)
				leftPrec = op.Priority
				continue
			}
		}
		return left, nil
	}
}

// parsePrimary reads one primary term (possibly a prefix-operator
// application) and returns it with its priority.
func (p *Parser) parsePrimary(maxPrec int) (term.Term, int, error) {
	t := p.next()
	switch t.Kind {
	case lex.EOF:
		return nil, 0, p.errf(t, "unexpected end of input")
	case lex.End:
		return nil, 0, p.errf(t, "unexpected '.'")
	case lex.IntTok:
		return term.Int(t.Int), 0, nil
	case lex.FloatTok:
		return term.Float(t.Float), 0, nil
	case lex.VarTok:
		return p.variable(t.Text), 0, nil
	case lex.StrTok:
		// Double-quoted strings read as lists of character codes.
		codes := make([]term.Term, 0, len(t.Text))
		for _, r := range t.Text {
			codes = append(codes, term.Int(r))
		}
		return term.List(codes...), 0, nil
	case lex.FunctorParen:
		args, err := p.argList()
		if err != nil {
			return nil, 0, err
		}
		return term.New(t.Text, args...), 0, nil
	case lex.Punct:
		switch t.Text {
		case "(":
			inner, err := p.parse(1200)
			if err != nil {
				return nil, 0, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, 0, err
			}
			return inner, 0, nil
		case "[":
			return p.list()
		case "{":
			if p.peek().Kind == lex.Punct && p.peek().Text == "}" {
				p.next()
				return term.Atom("{}"), 0, nil
			}
			inner, err := p.parse(1200)
			if err != nil {
				return nil, 0, err
			}
			if err := p.expectPunct("}"); err != nil {
				return nil, 0, err
			}
			return term.New("{}", inner), 0, nil
		}
		return nil, 0, p.errf(t, "unexpected %q", t.Text)
	case lex.AtomTok:
		return p.atomOrPrefix(t, maxPrec)
	}
	return nil, 0, p.errf(t, "unexpected token %v", t)
}

func (p *Parser) atomOrPrefix(t lex.Token, maxPrec int) (term.Term, int, error) {
	name := t.Text

	// Special-case negative numeric literals: '-' immediately before a
	// number folds into the literal, as in standard Prolog readers.
	if name == "-" || name == "+" {
		nt := p.peek()
		if nt.Kind == lex.IntTok {
			p.next()
			if name == "-" {
				return term.Int(-nt.Int), 0, nil
			}
			return term.Int(nt.Int), 0, nil
		}
		if nt.Kind == lex.FloatTok {
			p.next()
			if name == "-" {
				return term.Float(-nt.Float), 0, nil
			}
			return term.Float(nt.Float), 0, nil
		}
	}

	if op, ok := p.ops.Prefix(name); ok && op.Priority <= maxPrec && p.startsTerm(p.peek()) {
		_, ra := argPriorities(op)
		arg, err := p.parse(ra)
		if err != nil {
			return nil, 0, err
		}
		return term.New(name, arg), op.Priority, nil
	}
	return term.Atom(name), p.atomPrec(name), nil
}

// atomPrec: an atom that is also an operator carries its operator priority
// when used as an operand (standard reader subtlety); plain atoms are 0.
func (p *Parser) atomPrec(name string) int {
	max := 0
	if op, ok := p.ops.Infix(name); ok && op.Priority > max {
		max = op.Priority
	}
	if op, ok := p.ops.Prefix(name); ok && op.Priority > max {
		max = op.Priority
	}
	return max
}

// startsTerm reports whether tok could begin a term (so "- foo" parses as
// -(foo) but "f(-, x)" keeps '-' as a plain atom).
func (p *Parser) startsTerm(tok lex.Token) bool {
	switch tok.Kind {
	case lex.IntTok, lex.FloatTok, lex.VarTok, lex.StrTok, lex.FunctorParen:
		return true
	case lex.AtomTok:
		// An infix operator cannot start a term unless also prefix.
		if _, isInfix := p.ops.Infix(tok.Text); isInfix {
			_, isPrefix := p.ops.Prefix(tok.Text)
			return isPrefix
		}
		return true
	case lex.Punct:
		return tok.Text == "(" || tok.Text == "[" || tok.Text == "{"
	}
	return false
}

func (p *Parser) argList() ([]term.Term, error) {
	var args []term.Term
	for {
		a, err := p.parse(999) // ',' at 1000 separates arguments
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		t := p.next()
		if t.Kind != lex.Punct {
			return nil, p.errf(t, "expected ',' or ')' in argument list, found %v", t)
		}
		switch t.Text {
		case ",":
			continue
		case ")":
			return args, nil
		default:
			return nil, p.errf(t, "expected ',' or ')' in argument list, found %q", t.Text)
		}
	}
}

func (p *Parser) list() (term.Term, int, error) {
	if p.peek().Kind == lex.Punct && p.peek().Text == "]" {
		p.next()
		return term.NilAtom, 0, nil
	}
	var elems []term.Term
	tail := term.Term(term.NilAtom)
	for {
		e, err := p.parse(999)
		if err != nil {
			return nil, 0, err
		}
		elems = append(elems, e)
		t := p.next()
		if t.Kind != lex.Punct {
			return nil, 0, p.errf(t, "expected ',', '|' or ']' in list, found %v", t)
		}
		switch t.Text {
		case ",":
			continue
		case "|":
			tl, err := p.parse(999)
			if err != nil {
				return nil, 0, err
			}
			tail = tl
			if err := p.expectPunct("]"); err != nil {
				return nil, 0, err
			}
			return term.ListTail(tail, elems...), 0, nil
		case "]":
			return term.ListTail(tail, elems...), 0, nil
		default:
			return nil, 0, p.errf(t, "expected ',', '|' or ']' in list, found %q", t.Text)
		}
	}
}

func (p *Parser) expectPunct(s string) error {
	t := p.next()
	if t.Kind != lex.Punct || t.Text != s {
		return p.errf(t, "expected %q, found %v", s, t)
	}
	return nil
}

func (p *Parser) variable(name string) term.Term {
	if name == "_" {
		return term.NewVar("_")
	}
	if v, ok := p.vars[name]; ok {
		return v
	}
	v := term.NewVar(name)
	p.vars[name] = v
	if !strings.HasPrefix(name, "_") {
		p.VarNames = append(p.VarNames, name)
	}
	return v
}

// NamedVars returns the named variables of the most recently read clause as
// a name→variable map (for answer substitution display).
func (p *Parser) NamedVars() map[string]*term.Var {
	out := make(map[string]*term.Var, len(p.vars))
	for k, v := range p.vars {
		out[k] = v
	}
	return out
}
