package parse

// Operator types, following Edinburgh Prolog op/3.
type OpType uint8

const (
	XFX OpType = iota // infix, both args strictly lower priority
	XFY               // infix, right arg may be equal priority
	YFX               // infix, left arg may be equal priority
	FY                // prefix, arg may be equal priority
	FX                // prefix, arg strictly lower priority
	XF                // postfix, arg strictly lower priority
	YF                // postfix, arg may be equal priority
)

func (t OpType) String() string {
	switch t {
	case XFX:
		return "xfx"
	case XFY:
		return "xfy"
	case YFX:
		return "yfx"
	case FY:
		return "fy"
	case FX:
		return "fx"
	case XF:
		return "xf"
	case YF:
		return "yf"
	}
	return "op?"
}

// Op is one operator definition.
type Op struct {
	Priority int // 1..1200
	Type     OpType
	Name     string
}

// OpTable holds the operator definitions in force while parsing. A nil
// *OpTable means the default table.
type OpTable struct {
	infix   map[string]Op
	prefix  map[string]Op
	postfix map[string]Op
}

// NewOpTable returns a table preloaded with the standard Edinburgh
// operators used by Prolog-X.
func NewOpTable() *OpTable {
	t := &OpTable{
		infix:   make(map[string]Op),
		prefix:  make(map[string]Op),
		postfix: make(map[string]Op),
	}
	std := []Op{
		{1200, XFX, ":-"},
		{1200, XFX, "-->"},
		{1200, FX, ":-"},
		{1200, FX, "?-"},
		{1100, XFY, ";"},
		{1100, XFY, "|"},
		{1050, XFY, "->"},
		{1000, XFY, ","},
		{990, XFX, ":="},
		{900, FY, "\\+"},
		{700, XFX, "="},
		{700, XFX, "\\="},
		{700, XFX, "=="},
		{700, XFX, "\\=="},
		{700, XFX, "@<"},
		{700, XFX, "@>"},
		{700, XFX, "@=<"},
		{700, XFX, "@>="},
		{700, XFX, "is"},
		{700, XFX, "=:="},
		{700, XFX, "=\\="},
		{700, XFX, "<"},
		{700, XFX, ">"},
		{700, XFX, "=<"},
		{700, XFX, ">="},
		{700, XFX, "=.."},
		{500, YFX, "+"},
		{500, YFX, "-"},
		{500, YFX, "/\\"},
		{500, YFX, "\\/"},
		{500, YFX, "xor"},
		{400, YFX, "*"},
		{400, YFX, "/"},
		{400, YFX, "//"},
		{400, YFX, "mod"},
		{400, YFX, "rem"},
		{400, YFX, "<<"},
		{400, YFX, ">>"},
		{200, XFX, "**"},
		{200, XFY, "^"},
		{200, FY, "-"},
		{200, FY, "+"},
		{200, FY, "\\"},
		{100, YFX, "."}, // not used for lists; kept out of conflict by the lexer's End rule
		{1, FX, "$"},
	}
	for _, op := range std {
		t.Add(op)
	}
	// Remove the '.' infix: it collides with the end token in practice and
	// Prolog-X does not use it. (Added above only to document the decision.)
	delete(t.infix, ".")
	return t
}

// Add installs (or replaces) an operator definition. Priority 0 removes the
// operator of that fixity class.
func (t *OpTable) Add(op Op) {
	var m map[string]Op
	switch op.Type {
	case XFX, XFY, YFX:
		m = t.infix
	case FX, FY:
		m = t.prefix
	case XF, YF:
		m = t.postfix
	}
	if op.Priority == 0 {
		delete(m, op.Name)
		return
	}
	m[op.Name] = op
}

// Infix returns the infix operator definition for name, if any.
func (t *OpTable) Infix(name string) (Op, bool) {
	op, ok := t.infix[name]
	return op, ok
}

// Prefix returns the prefix operator definition for name, if any.
func (t *OpTable) Prefix(name string) (Op, bool) {
	op, ok := t.prefix[name]
	return op, ok
}

// Postfix returns the postfix operator definition for name, if any.
func (t *OpTable) Postfix(name string) (Op, bool) {
	op, ok := t.postfix[name]
	return op, ok
}

// argPriorities returns the maximum priorities permitted for the left and
// right arguments of op.
func argPriorities(op Op) (left, right int) {
	switch op.Type {
	case XFX:
		return op.Priority - 1, op.Priority - 1
	case XFY:
		return op.Priority - 1, op.Priority
	case YFX:
		return op.Priority, op.Priority - 1
	case FY, YF:
		return op.Priority, op.Priority
	case FX, XF:
		return op.Priority - 1, op.Priority - 1
	}
	return 0, 0
}
