package plfile

import (
	"os"
	"path/filepath"
	"testing"

	"clare/internal/term"
)

func TestReadClauses(t *testing.T) {
	cls, err := ReadClauses(`
		fact(a).
		rule(X) :- fact(X).
		fact(b).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(cls) != 3 {
		t.Fatalf("clauses = %d", len(cls))
	}
	if cls[0].Body != nil {
		t.Error("fact should have nil body")
	}
	if cls[1].Body == nil || cls[1].Body.Indicator() != "fact/1" {
		t.Errorf("rule body = %v", cls[1].Body)
	}
	// User order preserved.
	if cls[2].Head.String() != "fact(b)" {
		t.Errorf("order broken: %v", cls[2].Head)
	}
}

func TestReadClausesRejectsDirectives(t *testing.T) {
	if _, err := ReadClauses(":- module(zoo).\nanimal(lion)."); err == nil {
		t.Error("directives should be rejected in predicate files")
	}
}

func TestReadClausesSyntaxError(t *testing.T) {
	if _, err := ReadClauses("broken(."); err == nil {
		t.Error("syntax error should be reported")
	}
}

func TestReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.pl")
	if err := os.WriteFile(path, []byte("p(1).\np(2).\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cls, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(cls) != 2 || !term.Equal(cls[0].Head, term.New("p", term.Int(1))) {
		t.Errorf("clauses = %v", cls)
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.pl")); err == nil {
		t.Error("missing file should error")
	}
}
