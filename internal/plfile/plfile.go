// Package plfile reads Prolog source files into the clause lists the CLARE
// store builders consume — the shared front door of the kbc, crsd and
// claresim tools.
package plfile

import (
	"fmt"
	"os"

	"clare/internal/core"
	"clare/internal/parse"
	"clare/internal/term"
)

// ReadClauses parses Prolog source text into head/body clause pairs.
// Directives (:- Goal) are rejected: predicate files are pure clause data.
func ReadClauses(src string) ([]core.ClauseTerm, error) {
	p, err := parse.New(src)
	if err != nil {
		return nil, err
	}
	ts, err := p.ReadAll()
	if err != nil {
		return nil, err
	}
	out := make([]core.ClauseTerm, 0, len(ts))
	for i, t := range ts {
		if c, ok := t.(*term.Compound); ok && c.Functor == ":-" {
			switch len(c.Args) {
			case 1:
				return nil, fmt.Errorf("plfile: clause %d is a directive; predicate files hold clauses only", i+1)
			case 2:
				out = append(out, core.ClauseTerm{Head: c.Args[0], Body: c.Args[1]})
				continue
			}
		}
		out = append(out, core.ClauseTerm{Head: t})
	}
	return out, nil
}

// ReadFile is ReadClauses over a file.
func ReadFile(path string) ([]core.ClauseTerm, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cls, err := ReadClauses(string(src))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return cls, nil
}
