// Package lex tokenizes Edinburgh Prolog source text for the Prolog-X–style
// front end of the PDBM substrate.
//
// The token classes follow Clocksin & Mellish syntax: alphanumeric and
// quoted and symbolic atoms, variables, integers (decimal, 0x/0o/0b radix
// and 0'c character codes), floats, double-quoted strings (read as code
// lists by the parser), punctuation, and the clause-terminating full stop.
// Comments (% to end of line, /* ... */) are skipped.
package lex

import (
	"fmt"
	"strings"
	"unicode"
)

// Kind classifies a token.
type Kind uint8

const (
	// EOF marks the end of input.
	EOF Kind = iota
	// AtomTok is an atom: alphanumeric (foo), quoted ('Foo bar') or
	// symbolic (+, =.., -->). The Text field holds the unquoted value.
	AtomTok
	// VarTok is a variable (X, _Foo, _).
	VarTok
	// IntTok is an integer literal; Int holds the value.
	IntTok
	// FloatTok is a float literal; Float holds the value.
	FloatTok
	// StrTok is a double-quoted string; Text holds the unescaped contents.
	StrTok
	// Punct is one of ( ) [ ] { } , |  — Text holds the character.
	Punct
	// FunctorParen is an atom immediately followed by '(' (no space):
	// the start of a compound term. Text holds the atom.
	FunctorParen
	// End is the clause-terminating full stop.
	End
)

func (k Kind) String() string {
	switch k {
	case EOF:
		return "eof"
	case AtomTok:
		return "atom"
	case VarTok:
		return "variable"
	case IntTok:
		return "integer"
	case FloatTok:
		return "float"
	case StrTok:
		return "string"
	case Punct:
		return "punctuation"
	case FunctorParen:
		return "functor("
	case End:
		return "end"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Token is one lexical item.
type Token struct {
	Kind  Kind
	Text  string
	Int   int64
	Float float64
	Line  int // 1-based line of the token's first character
	Col   int // 1-based column
}

func (t Token) String() string {
	switch t.Kind {
	case IntTok:
		return fmt.Sprintf("%d", t.Int)
	case FloatTok:
		return fmt.Sprintf("%g", t.Float)
	case EOF:
		return "<eof>"
	case End:
		return "."
	default:
		return t.Text
	}
}

// Error is a lexical error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("lex: %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Lexer scans Prolog source text.
type Lexer struct {
	src       []rune
	pos       int
	line, col int
}

// New returns a Lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: []rune(src), line: 1, col: 1}
}

const symbolChars = "+-*/\\^<>=~:.?@#&$"

func (l *Lexer) peek() rune {
	if l.pos >= len(l.src) {
		return -1
	}
	return l.src[l.pos]
}

func (l *Lexer) peekAt(off int) rune {
	if l.pos+off >= len(l.src) {
		return -1
	}
	return l.src[l.pos+off]
}

func (l *Lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) errf(format string, args ...any) error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

// Next returns the next token, or an error.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipLayout(); err != nil {
		return Token{}, err
	}
	startLine, startCol := l.line, l.col
	mk := func(k Kind, text string) Token {
		return Token{Kind: k, Text: text, Line: startLine, Col: startCol}
	}
	r := l.peek()
	if r < 0 {
		return mk(EOF, ""), nil
	}

	switch {
	case r == '(' || r == ')' || r == '[' || r == ']' || r == '{' || r == '}' || r == ',' || r == '|':
		l.advance()
		return mk(Punct, string(r)), nil

	case r == '!' || r == ';':
		l.advance()
		if l.peek() == '(' {
			l.advance()
			return mk(FunctorParen, string(r)), nil
		}
		return mk(AtomTok, string(r)), nil

	case r == '\'':
		text, err := l.scanQuoted('\'')
		if err != nil {
			return Token{}, err
		}
		if l.peek() == '(' {
			l.advance()
			return mk(FunctorParen, text), nil
		}
		return mk(AtomTok, text), nil

	case r == '"':
		text, err := l.scanQuoted('"')
		if err != nil {
			return Token{}, err
		}
		return mk(StrTok, text), nil

	case unicode.IsDigit(r):
		return l.scanNumber(startLine, startCol)

	case r == '_' || unicode.IsUpper(r):
		name := l.scanAlnum()
		return mk(VarTok, name), nil

	case unicode.IsLower(r):
		name := l.scanAlnum()
		if l.peek() == '(' {
			l.advance()
			return mk(FunctorParen, name), nil
		}
		return mk(AtomTok, name), nil

	case strings.ContainsRune(symbolChars, r):
		sym := l.scanSymbolic()
		// A lone '.' followed by layout or EOF is the end token.
		if sym == "." {
			return mk(End, "."), nil
		}
		if l.peek() == '(' {
			l.advance()
			return mk(FunctorParen, sym), nil
		}
		return mk(AtomTok, sym), nil
	}
	return Token{}, l.errf("unexpected character %q", r)
}

// All tokenizes the entire input.
func (l *Lexer) All() ([]Token, error) {
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return out, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}

func (l *Lexer) skipLayout() error {
	for {
		r := l.peek()
		switch {
		case r < 0:
			return nil
		case unicode.IsSpace(r):
			l.advance()
		case r == '%':
			for l.peek() >= 0 && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && l.peekAt(1) == '*':
			openLine, openCol := l.line, l.col
			l.advance()
			l.advance()
			for {
				if l.peek() < 0 {
					return &Error{Line: openLine, Col: openCol, Msg: "unterminated block comment"}
				}
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
}

func (l *Lexer) scanAlnum() string {
	var b strings.Builder
	for {
		r := l.peek()
		if r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(l.advance())
			continue
		}
		return b.String()
	}
}

func (l *Lexer) scanSymbolic() string {
	var b strings.Builder
	for strings.ContainsRune(symbolChars, l.peek()) {
		b.WriteRune(l.advance())
		// "." terminates a clause when followed by layout/EOF/%; detect
		// that case so "X = Y." lexes the final dot as End not part of a
		// symbolic atom, while "=.." still lexes as one atom.
		if b.String() == "." {
			nxt := l.peek()
			if nxt < 0 || unicode.IsSpace(nxt) || nxt == '%' {
				return "."
			}
		}
	}
	return b.String()
}

func (l *Lexer) scanQuoted(quote rune) (string, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		r := l.peek()
		if r < 0 {
			return "", l.errf("unterminated quoted token")
		}
		l.advance()
		switch {
		case r == quote:
			// Doubled quote is an escaped quote.
			if l.peek() == quote {
				l.advance()
				b.WriteRune(quote)
				continue
			}
			return b.String(), nil
		case r == '\\':
			e := l.peek()
			if e < 0 {
				return "", l.errf("unterminated escape")
			}
			l.advance()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case 'a':
				b.WriteByte(7)
			case 'b':
				b.WriteByte(8)
			case 'f':
				b.WriteByte(12)
			case 'v':
				b.WriteByte(11)
			case '0':
				b.WriteByte(0)
			case '\\', '\'', '"', '`':
				b.WriteRune(e)
			case '\n': // line continuation
			default:
				return "", l.errf("unknown escape \\%c", e)
			}
		default:
			b.WriteRune(r)
		}
	}
}

func (l *Lexer) scanNumber(startLine, startCol int) (Token, error) {
	mk := func(k Kind) Token { return Token{Kind: k, Line: startLine, Col: startCol} }

	// Radix and character-code forms start with 0.
	if l.peek() == '0' {
		switch l.peekAt(1) {
		case '\'':
			l.advance()
			l.advance()
			r := l.peek()
			if r < 0 {
				return Token{}, l.errf("unterminated character code")
			}
			l.advance()
			if r == '\\' {
				e := l.peek()
				if e < 0 {
					return Token{}, l.errf("unterminated character escape")
				}
				l.advance()
				switch e {
				case 'n':
					r = '\n'
				case 't':
					r = '\t'
				case 'r':
					r = '\r'
				case 'a':
					r = 7
				case 'b':
					r = 8
				case 'f':
					r = 12
				case 'v':
					r = 11
				case '\\', '\'', '"', '`':
					r = e
				default:
					return Token{}, l.errf("unknown character escape \\%c", e)
				}
			}
			t := mk(IntTok)
			t.Int = int64(r)
			return t, nil
		case 'x', 'o', 'b':
			base := map[rune]int64{'x': 16, 'o': 8, 'b': 2}[l.peekAt(1)]
			digits := func(r rune) bool {
				switch base {
				case 16:
					return unicode.Is(unicode.ASCII_Hex_Digit, r)
				case 8:
					return r >= '0' && r <= '7'
				default:
					return r == '0' || r == '1'
				}
			}
			if !digits(l.peekAt(2)) {
				break // plain 0 followed by an atom like x
			}
			l.advance()
			l.advance()
			var v int64
			for digits(l.peek()) {
				d := l.advance()
				var dv int64
				switch {
				case d >= '0' && d <= '9':
					dv = int64(d - '0')
				case d >= 'a' && d <= 'f':
					dv = int64(d-'a') + 10
				case d >= 'A' && d <= 'F':
					dv = int64(d-'A') + 10
				}
				v = v*base + dv
			}
			t := mk(IntTok)
			t.Int = v
			return t, nil
		}
	}

	var b strings.Builder
	for unicode.IsDigit(l.peek()) {
		b.WriteRune(l.advance())
	}
	isFloat := false
	// Fraction: '.' must be followed by a digit, else it is the end token.
	if l.peek() == '.' && unicode.IsDigit(l.peekAt(1)) {
		isFloat = true
		b.WriteRune(l.advance())
		for unicode.IsDigit(l.peek()) {
			b.WriteRune(l.advance())
		}
	}
	// Exponent.
	if e := l.peek(); e == 'e' || e == 'E' {
		next := l.peekAt(1)
		nextNext := l.peekAt(2)
		if unicode.IsDigit(next) || ((next == '+' || next == '-') && unicode.IsDigit(nextNext)) {
			isFloat = true
			b.WriteRune(l.advance())
			if l.peek() == '+' || l.peek() == '-' {
				b.WriteRune(l.advance())
			}
			for unicode.IsDigit(l.peek()) {
				b.WriteRune(l.advance())
			}
		}
	}
	if isFloat {
		var f float64
		if _, err := fmt.Sscanf(b.String(), "%g", &f); err != nil {
			return Token{}, l.errf("bad float %q: %v", b.String(), err)
		}
		t := mk(FloatTok)
		t.Float = f
		return t, nil
	}
	var v int64
	if _, err := fmt.Sscanf(b.String(), "%d", &v); err != nil {
		return Token{}, l.errf("bad integer %q: %v", b.String(), err)
	}
	t := mk(IntTok)
	t.Int = v
	return t, nil
}
