package lex

import (
	"strings"
	"testing"
)

func lexAll(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := New(src).All()
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	return toks
}

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, tok := range toks {
		out[i] = tok.Kind
	}
	return out
}

func TestSimpleFact(t *testing.T) {
	toks := lexAll(t, "likes(mary, wine).")
	want := []Kind{FunctorParen, AtomTok, Punct, AtomTok, Punct, End, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: %v want %v (%v)", i, got[i], want[i], toks[i])
		}
	}
	if toks[0].Text != "likes" {
		t.Errorf("functor text = %q", toks[0].Text)
	}
}

func TestVariables(t *testing.T) {
	toks := lexAll(t, "X _Y _ Abc")
	for i, want := range []string{"X", "_Y", "_", "Abc"} {
		if toks[i].Kind != VarTok || toks[i].Text != want {
			t.Errorf("token %d = %v, want var %q", i, toks[i], want)
		}
	}
}

func TestIntegers(t *testing.T) {
	cases := map[string]int64{
		"42":     42,
		"0":      0,
		"0xff":   255,
		"0o17":   15,
		"0b101":  5,
		"0'a":    'a',
		"0' ":    ' ',
		"0'\\n":  '\n',
		"0'\\\\": '\\',
	}
	for src, want := range cases {
		toks := lexAll(t, src)
		if toks[0].Kind != IntTok || toks[0].Int != want {
			t.Errorf("lex %q = %v (int=%d), want %d", src, toks[0].Kind, toks[0].Int, want)
		}
	}
}

func TestFloats(t *testing.T) {
	cases := map[string]float64{
		"3.14":   3.14,
		"1.0e3":  1000,
		"2.5E-2": 0.025,
		"7e2":    700,
	}
	for src, want := range cases {
		toks := lexAll(t, src)
		if toks[0].Kind != FloatTok || toks[0].Float != want {
			t.Errorf("lex %q = kind %v float %v, want %v", src, toks[0].Kind, toks[0].Float, want)
		}
	}
}

func TestIntDotEndNotFloat(t *testing.T) {
	toks := lexAll(t, "foo(1).")
	if toks[1].Kind != IntTok || toks[1].Int != 1 {
		t.Fatalf("expected integer 1, got %v", toks[1])
	}
	if toks[3].Kind != End {
		t.Fatalf("expected End after ')', got %v", toks[3])
	}
}

func TestQuotedAtoms(t *testing.T) {
	toks := lexAll(t, `'Hello world' 'don''t' 'a\nb'`)
	want := []string{"Hello world", "don't", "a\nb"}
	for i, w := range want {
		if toks[i].Kind != AtomTok || toks[i].Text != w {
			t.Errorf("token %d = %q (%v), want %q", i, toks[i].Text, toks[i].Kind, w)
		}
	}
}

func TestQuotedFunctor(t *testing.T) {
	toks := lexAll(t, "'My Functor'(x)")
	if toks[0].Kind != FunctorParen || toks[0].Text != "My Functor" {
		t.Errorf("token = %v", toks[0])
	}
}

func TestStrings(t *testing.T) {
	toks := lexAll(t, `"abc" "with ""quote"""`)
	if toks[0].Kind != StrTok || toks[0].Text != "abc" {
		t.Errorf("token 0 = %v", toks[0])
	}
	if toks[1].Kind != StrTok || toks[1].Text != `with "quote"` {
		t.Errorf("token 1 = %q", toks[1].Text)
	}
}

func TestSymbolicAtoms(t *testing.T) {
	toks := lexAll(t, "X =.. Y, A - B :- C --> D")
	texts := []string{}
	for _, tok := range toks {
		if tok.Kind == AtomTok {
			texts = append(texts, tok.Text)
		}
	}
	want := []string{"=..", "-", ":-", "-->"}
	if strings.Join(texts, " ") != strings.Join(want, " ") {
		t.Errorf("symbolic atoms = %v, want %v", texts, want)
	}
}

func TestComments(t *testing.T) {
	src := `
% a line comment
foo. /* block
comment */ bar.
`
	toks := lexAll(t, src)
	var atoms []string
	for _, tok := range toks {
		if tok.Kind == AtomTok {
			atoms = append(atoms, tok.Text)
		}
	}
	if len(atoms) != 2 || atoms[0] != "foo" || atoms[1] != "bar" {
		t.Errorf("atoms = %v", atoms)
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	_, err := New("/* never ends").All()
	if err == nil {
		t.Fatal("expected error for unterminated block comment")
	}
}

func TestUnterminatedQuote(t *testing.T) {
	if _, err := New("'abc").All(); err == nil {
		t.Fatal("expected error for unterminated quote")
	}
}

func TestPunctuation(t *testing.T) {
	toks := lexAll(t, "[a|B] {x} (y)")
	var ps []string
	for _, tok := range toks {
		if tok.Kind == Punct {
			ps = append(ps, tok.Text)
		}
	}
	want := "[ | ] { } ( )"
	if strings.Join(ps, " ") != want {
		t.Errorf("punct = %v, want %v", ps, want)
	}
}

func TestLineColTracking(t *testing.T) {
	toks := lexAll(t, "a.\nbcd.")
	// "bcd" starts at line 2 col 1.
	var bcd Token
	for _, tok := range toks {
		if tok.Kind == AtomTok && tok.Text == "bcd" {
			bcd = tok
		}
	}
	if bcd.Line != 2 || bcd.Col != 1 {
		t.Errorf("bcd at %d:%d, want 2:1", bcd.Line, bcd.Col)
	}
}

func TestEndVsDotInAtom(t *testing.T) {
	// "=.." must stay one atom; final "." must be End even at EOF.
	toks := lexAll(t, "=..")
	if toks[0].Kind != AtomTok || toks[0].Text != "=.." {
		t.Fatalf("=.. lexed as %v", toks[0])
	}
	toks = lexAll(t, "a.")
	if toks[1].Kind != End {
		t.Fatalf("trailing dot lexed as %v", toks[1])
	}
}

func TestCutAndSemicolon(t *testing.T) {
	toks := lexAll(t, "! ; ;(a,b)")
	if toks[0].Kind != AtomTok || toks[0].Text != "!" {
		t.Errorf("cut = %v", toks[0])
	}
	if toks[1].Kind != AtomTok || toks[1].Text != ";" {
		t.Errorf("semicolon = %v", toks[1])
	}
	if toks[2].Kind != FunctorParen || toks[2].Text != ";" {
		t.Errorf(";( = %v", toks[2])
	}
}

func TestNegativeHandledByParserNotLexer(t *testing.T) {
	// "-1" lexes as atom '-' then integer 1; the parser folds prefix minus.
	toks := lexAll(t, "-1")
	if toks[0].Kind != AtomTok || toks[0].Text != "-" {
		t.Fatalf("token 0 = %v", toks[0])
	}
	if toks[1].Kind != IntTok || toks[1].Int != 1 {
		t.Fatalf("token 1 = %v", toks[1])
	}
}

func TestTokenAndKindStrings(t *testing.T) {
	toks := lexAll(t, "foo(X, 42, 2.5, \"s\").")
	var parts []string
	for _, tok := range toks {
		parts = append(parts, tok.String(), tok.Kind.String())
	}
	joined := strings.Join(parts, " ")
	for _, want := range []string{"foo", "functor(", "X", "variable", "42", "integer", "2.5", "float", "string", ".", "end", "<eof>", "eof"} {
		if !strings.Contains(joined, want) {
			t.Errorf("token strings missing %q in %q", want, joined)
		}
	}
}

func TestLexErrorMessage(t *testing.T) {
	_, err := New("'unterminated").All()
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "lex:") || !strings.Contains(err.Error(), "1:") {
		t.Errorf("error lacks position: %v", err)
	}
}

func TestQuotedEscapes(t *testing.T) {
	toks := lexAll(t, `'a\r\a\b\f\v\0\`+"\n"+`z'`)
	want := "a\r\x07\x08\x0c\x0b\x00z"
	if toks[0].Text != want {
		t.Errorf("escapes = %q, want %q", toks[0].Text, want)
	}
	if _, err := New(`'bad \q escape'`).All(); err == nil {
		t.Error("unknown escape should fail")
	}
	if _, err := New(`'trailing \`).All(); err == nil {
		t.Error("unterminated escape should fail")
	}
}

func TestCharCodeEscapes(t *testing.T) {
	cases := map[string]int64{`0'\r`: '\r', `0'\a`: 7, `0'\b`: 8, `0'\f`: 12, `0'\v`: 11, `0''`: '\''}
	for src, want := range cases {
		toks := lexAll(t, src)
		if toks[0].Kind != IntTok || toks[0].Int != want {
			t.Errorf("%s = %v (%d), want %d", src, toks[0].Kind, toks[0].Int, want)
		}
	}
	if _, err := New(`0'\q`).All(); err == nil {
		t.Error("unknown char escape should fail")
	}
}
