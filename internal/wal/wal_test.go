package wal

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"clare/internal/fault"
	"clare/internal/telemetry"
)

func TestAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncPolicy{Always: true}})
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Seq: 1, Op: OpAssert, Module: "family", Clause: "parent(a, b)"},
		{Seq: 2, Op: OpRetract, Module: "family", Clause: "parent(a, b)"},
		{Seq: 3, Op: OpAssert, Module: "rel", Clause: "r(X) :- s(X)"},
	}
	for _, r := range want {
		seq, err := l.Append(r.Op, r.Module, r.Clause)
		if err != nil {
			t.Fatal(err)
		}
		if seq != r.Seq {
			t.Fatalf("Append seq = %d, want %d", seq, r.Seq)
		}
	}
	if got := l.LastSeq(); got != 3 {
		t.Fatalf("LastSeq = %d, want 3", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var got []Record
	if err := l2.Range(1, func(r Record) bool { got = append(got, r); return true }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// The reopened log continues the sequence.
	seq, err := l2.Append(OpAssert, "family", "parent(b, c)")
	if err != nil {
		t.Fatal(err)
	}
	if seq != 4 {
		t.Fatalf("post-reopen Append seq = %d, want 4", seq)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if _, err := l.Append(OpAssert, "m", fmt.Sprintf("p(c%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("Segments = %d, want >= 3 with a 128-byte threshold", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{SegmentSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	count := 0
	lastSeq := uint64(0)
	err = l2.Range(1, func(r Record) bool {
		if r.Seq != lastSeq+1 {
			t.Fatalf("out-of-order replay: seq %d after %d", r.Seq, lastSeq)
		}
		lastSeq = r.Seq
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("replayed %d records across segments, want %d", count, n)
	}
}

func TestRangeFrom(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentSize: 96})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 20; i++ {
		if _, err := l.Append(OpAssert, "m", fmt.Sprintf("p(c%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	recs, last, err := l.Suffix(15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if last != 20 {
		t.Fatalf("Suffix last = %d, want 20", last)
	}
	if len(recs) != 6 || recs[0].Seq != 15 || recs[5].Seq != 20 {
		t.Fatalf("Suffix(15) = %d recs [%d..%d], want 6 [15..20]",
			len(recs), recs[0].Seq, recs[len(recs)-1].Seq)
	}
	recs, _, err = l.Suffix(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 7 || recs[6].Seq != 7 {
		t.Fatalf("Suffix(1, max 7) = %d recs, want 7 ending at seq 7", len(recs))
	}
}

// TestTornTailRecovery is the crash-recovery property test: truncate
// the log at every possible byte offset (simulating a writer killed
// mid-append at that point) and require that recovery yields a clean
// prefix of the committed sequence — never a torn, reordered, or
// corrupted record — and that the recovered log accepts new appends.
func TestTornTailRecovery(t *testing.T) {
	master := t.TempDir()
	l, err := Open(master, Options{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]Record, 0, 24)
	for i := 0; i < 24; i++ {
		r := Record{Op: OpAssert, Module: "m", Clause: fmt.Sprintf("p(c%d, v%d)", i, i*i)}
		if i%5 == 4 {
			r.Op = OpRetract
		}
		seq, err := l.Append(r.Op, r.Module, r.Clause)
		if err != nil {
			t.Fatal(err)
		}
		r.Seq = seq
		want = append(want, r)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(master, "wal-*.log"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("want >= 2 segments, got %d (err %v)", len(segs), err)
	}
	tail := segs[len(segs)-1]
	blob, err := os.ReadFile(tail)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	offsets := []int{0, 1, len(blob) - 1, len(blob)}
	for i := 0; i < 40; i++ {
		offsets = append(offsets, rng.Intn(len(blob)+1))
	}
	for _, cut := range offsets {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			copyDir(t, master, dir)
			if err := os.Truncate(filepath.Join(dir, filepath.Base(tail)), int64(cut)); err != nil {
				t.Fatal(err)
			}
			rl, err := Open(dir, Options{SegmentSize: 256})
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer rl.Close()
			var got []Record
			if err := rl.Range(1, func(r Record) bool { got = append(got, r); return true }); err != nil {
				t.Fatal(err)
			}
			// Prefix property: every recovered record matches the committed
			// sequence, in order, from seq 1.
			if len(got) > len(want) {
				t.Fatalf("recovered %d records, committed only %d", len(got), len(want))
			}
			for j, r := range got {
				if r != want[j] {
					t.Fatalf("recovered record %d = %+v, want %+v (not a prefix)", j, r, want[j])
				}
			}
			// The truncated tail can only lose whole records from the cut
			// segment, so at least everything before the tail segment
			// survives.
			tailFirst, err := parseSegName(tail)
			if err != nil {
				t.Fatal(err)
			}
			if minKeep := int(tailFirst) - 1; len(got) < minKeep {
				t.Fatalf("recovered %d records, want at least the %d before the cut segment", len(got), minKeep)
			}
			// The recovered log is appendable and continues the sequence.
			seq, err := rl.Append(OpAssert, "m", "post_recovery(x)")
			if err != nil {
				t.Fatal(err)
			}
			if wantSeq := uint64(len(got)) + 1; seq != wantSeq {
				t.Fatalf("post-recovery Append seq = %d, want %d", seq, wantSeq)
			}
		})
	}
}

// TestCorruptMiddleFrame flips a byte inside an already-synced frame of
// the final segment: recovery truncates there (CRC catches it) and
// keeps the prefix.
func TestCorruptMiddleFrame(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var frameEnd int
	for i := 0; i < 6; i++ {
		if _, err := l.Append(OpAssert, "m", fmt.Sprintf("p(c%d)", i)); err != nil {
			t.Fatal(err)
		}
		if i == 2 {
			frameEnd = int(l.Stats().Bytes)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segName(1))
	blob, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	blob[frameEnd+frameHeader+2] ^= 0xff // corrupt frame 4's payload
	if err := os.WriteFile(seg, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	rl, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()
	if got := rl.LastSeq(); got != 3 {
		t.Fatalf("LastSeq after mid-frame corruption = %d, want 3 (prefix before the bad frame)", got)
	}
	if rl.Stats().Truncated == 0 {
		t.Fatal("Truncated = 0, want the discarded tail counted")
	}
}

func TestAppendAtRejectsGaps(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.AppendAt(Record{Seq: 1, Op: OpAssert, Module: "m", Clause: "p(a)"}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendAt(Record{Seq: 3, Op: OpAssert, Module: "m", Clause: "p(b)"}); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("gap append err = %v, want ErrSeqGap", err)
	}
	if err := l.AppendAt(Record{Seq: 1, Op: OpAssert, Module: "m", Clause: "p(b)"}); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("dup append err = %v, want ErrSeqGap", err)
	}
	if err := l.AppendAt(Record{Seq: 2, Op: OpAssert, Module: "m", Clause: "p(b)"}); err != nil {
		t.Fatalf("dense append err = %v", err)
	}
	if got := l.LastSeq(); got != 2 {
		t.Fatalf("LastSeq = %d, want 2", got)
	}
}

func TestAppendBatch(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Fsync: FsyncPolicy{Always: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	last, err := l.AppendBatch([]Record{
		{Op: OpAssert, Module: "m", Clause: "p(a)"},
		{Op: OpAssert, Module: "m", Clause: "p(b)"},
		{Op: OpRetract, Module: "m", Clause: "p(a)"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if last != 3 {
		t.Fatalf("AppendBatch last = %d, want 3", last)
	}
	st := l.Stats()
	if st.Fsyncs != 1 {
		t.Fatalf("Fsyncs = %d, want 1 (one durability unit per batch)", st.Fsyncs)
	}
	if _, err := l.AppendBatch(nil); err == nil {
		t.Fatal("empty batch: want error")
	}
}

func TestFsyncPolicyParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want string
		err  bool
	}{
		{"always", "always", false},
		{"never", "never", false},
		{"100ms", "100ms", false},
		{"0s", "", true},
		{"-1s", "", true},
		{"sometimes", "", true},
	} {
		p, err := ParseFsyncPolicy(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("ParseFsyncPolicy(%q): want error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseFsyncPolicy(%q): %v", tc.in, err)
			continue
		}
		if p.String() != tc.want {
			t.Errorf("ParseFsyncPolicy(%q) = %s, want %s", tc.in, p, tc.want)
		}
	}
}

func TestRecordTextRoundTrip(t *testing.T) {
	for _, r := range []Record{
		{Seq: 1, Op: OpAssert, Module: "family", Clause: "parent(a, b)"},
		{Seq: 99, Op: OpRetract, Module: "rel", Clause: "r(X) :- s(X), t(X)"},
	} {
		got, err := ParseRecordText(r.WireText())
		if err != nil {
			t.Fatalf("round-trip %+v: %v", r, err)
		}
		if got != r {
			t.Fatalf("round-trip %+v = %+v", r, got)
		}
	}
	for _, bad := range []string{"", "1 assert m", "0 assert m p(a)", "x assert m p(a)", "1 frob m p(a)"} {
		if _, err := ParseRecordText(bad); err == nil {
			t.Errorf("ParseRecordText(%q): want error", bad)
		}
	}
}

// TestInjectedFaultsNeverSurface arms wal.append and wal.fsync at
// probability 1 and requires every append to still succeed — injected
// faults are absorbed into counters, never client-visible errors.
func TestInjectedFaultsNeverSurface(t *testing.T) {
	inj := fault.New(1).
		Add(fault.Rule{Site: fault.SiteWALAppend, Probability: 1}).
		Add(fault.Rule{Site: fault.SiteWALFsync, Probability: 1})
	reg := telemetry.NewRegistry()
	l, err := Open(t.TempDir(), Options{Fsync: FsyncPolicy{Always: true}, Faults: inj, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		if _, err := l.Append(OpAssert, "m", fmt.Sprintf("p(c%d)", i)); err != nil {
			t.Fatalf("append %d surfaced injected fault: %v", i, err)
		}
	}
	st := l.Stats()
	if st.Appends != 10 {
		t.Fatalf("Appends = %d, want 10", st.Appends)
	}
	if st.Faults < 20 {
		t.Fatalf("Faults = %d, want >= 20 (append + fsync per record)", st.Faults)
	}
	if st.Fsyncs != 0 {
		t.Fatalf("Fsyncs = %d, want 0 (every flush downgraded)", st.Fsyncs)
	}
	if inj.Injected() < 20 {
		t.Fatalf("Injected = %d, want >= 20", inj.Injected())
	}
}

type memSink struct {
	log     *Log
	applyFn func(Record) (uint64, error)
}

func (m *memSink) Bootstrap() (uint64, error) { return m.log.LastSeq(), nil }

func (m *memSink) Apply(r Record) (uint64, error) {
	if m.applyFn != nil {
		return m.applyFn(r)
	}
	if r.Seq <= m.log.LastSeq() {
		return m.log.LastSeq(), nil // dup
	}
	if err := m.log.AppendAt(r); err != nil {
		if errors.Is(err, ErrSeqGap) {
			return m.log.LastSeq(), nil // gap: report where we are
		}
		return 0, err
	}
	return m.log.LastSeq(), nil
}

func TestShipperCatchUp(t *testing.T) {
	primary, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	replica, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	for i := 0; i < 30; i++ {
		if _, err := primary.Append(OpAssert, "m", fmt.Sprintf("p(c%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	s := NewShipper(primary.Suffix, &memSink{log: replica}, ShipperConfig{Batch: 7})
	s.CatchUp()
	if got := replica.LastSeq(); got != 30 {
		t.Fatalf("replica LastSeq = %d, want 30", got)
	}
	if got := s.Shipped(); got != 30 {
		t.Fatalf("Shipped = %d, want 30", got)
	}
	// New appends ship on the next round.
	if _, err := primary.Append(OpAssert, "m", "p(late)"); err != nil {
		t.Fatal(err)
	}
	s.Notify(primary.LastSeq())
	s.CatchUp()
	if got := replica.LastSeq(); got != 31 {
		t.Fatalf("replica LastSeq after notify = %d, want 31", got)
	}
}

func TestShipperFaultSkipsRound(t *testing.T) {
	primary, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	replica, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	if _, err := primary.Append(OpAssert, "m", "p(a)"); err != nil {
		t.Fatal(err)
	}
	inj := fault.New(3).Add(fault.Rule{Site: fault.SiteWALShip, Nth: 1, Limit: 2})
	s := NewShipper(primary.Suffix, &memSink{log: replica}, ShipperConfig{Faults: inj})
	s.CatchUp() // round 1 faults: nothing ships, lag persists
	s.CatchUp() // round 2 faults too
	if got := replica.LastSeq(); got != 0 {
		t.Fatalf("replica LastSeq during fault = %d, want 0 (rounds skipped)", got)
	}
	if got := s.Faults(); got != 2 {
		t.Fatalf("Faults = %d, want 2 skipped rounds counted", got)
	}
	s.CatchUp() // fault budget exhausted: clean round catches up
	if got := replica.LastSeq(); got != 1 {
		t.Fatalf("replica LastSeq after faults drained = %d, want 1", got)
	}
}

func TestShipperRewindsOnSinkRestart(t *testing.T) {
	primary, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	replicaDir := t.TempDir()
	replica, err := Open(replicaDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sink := &memSink{log: replica}
	var onLagApplied, onLagLast uint64
	s := NewShipper(primary.Suffix, sink, ShipperConfig{
		OnLag: func(applied, last uint64) { onLagApplied, onLagLast = applied, last },
	})
	for i := 0; i < 10; i++ {
		if _, err := primary.Append(OpAssert, "m", fmt.Sprintf("p(c%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	s.CatchUp()
	if replica.LastSeq() != 10 {
		t.Fatalf("replica at %d, want 10", replica.LastSeq())
	}
	if onLagApplied != 10 || onLagLast != 10 {
		t.Fatalf("OnLag(%d, %d), want (10, 10)", onLagApplied, onLagLast)
	}
	// "Restart" the replica having lost its last 4 records (unsynced
	// tail): the shipper must rewind to its reported position and
	// re-ship, not wedge.
	replica.Close()
	blob, err := os.ReadFile(filepath.Join(replicaDir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	var keep int
	for off, n := 0, 0; n < 6; n++ {
		_, sz, err := DecodeFrame(blob[off:])
		if err != nil {
			t.Fatal(err)
		}
		off += sz
		keep = off
	}
	if err := os.WriteFile(filepath.Join(replicaDir, segName(1)), blob[:keep], 0o644); err != nil {
		t.Fatal(err)
	}
	replica, err = Open(replicaDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	if replica.LastSeq() != 6 {
		t.Fatalf("restarted replica at %d, want 6", replica.LastSeq())
	}
	sink.log = replica
	// A new primary write flows to the sink; its ack (applied seq 6, not
	// 10) tells the shipper the sink went backwards, and the rewound
	// rounds re-ship the lost suffix.
	if _, err := primary.Append(OpAssert, "m", "p(late)"); err != nil {
		t.Fatal(err)
	}
	s.Notify(primary.LastSeq())
	s.CatchUp()
	if got := replica.LastSeq(); got != 11 {
		t.Fatalf("replica after rewind = %d, want 11", got)
	}
}

func TestFollowerCatchUp(t *testing.T) {
	primary, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	replica, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	for i := 0; i < 12; i++ {
		if _, err := primary.Append(OpAssert, "m", fmt.Sprintf("p(c%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	f := NewFollower(
		primary.Suffix,
		func(r Record) (uint64, error) {
			if err := replica.AppendAt(r); err != nil {
				return 0, err
			}
			return replica.LastSeq(), nil
		},
		replica.LastSeq,
		FollowerConfig{Batch: 5},
	)
	n, err := f.CatchUp()
	if err != nil {
		t.Fatal(err)
	}
	if n != 12 || replica.LastSeq() != 12 {
		t.Fatalf("CatchUp applied %d (replica at %d), want 12", n, replica.LastSeq())
	}
	// Idempotent: nothing new applies twice.
	n, err = f.CatchUp()
	if err != nil || n != 0 {
		t.Fatalf("second CatchUp = (%d, %v), want (0, nil)", n, err)
	}
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		blob, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzWALDecode throws arbitrary bytes at the frame decoder: it must
// never panic, and whenever it does decode a record, re-encoding that
// record must reproduce exactly the bytes consumed (a parsed frame is
// canonical).
func FuzzWALDecode(f *testing.F) {
	f.Add(AppendFrame(nil, Record{Seq: 1, Op: OpAssert, Module: "family", Clause: "parent(a, b)"}))
	f.Add(AppendFrame(nil, Record{Seq: 1 << 40, Op: OpRetract, Module: "m", Clause: "r(X) :- s(X)"}))
	two := AppendFrame(nil, Record{Seq: 7, Op: OpAssert, Module: "m", Clause: "p(a)"})
	f.Add(AppendFrame(two, Record{Seq: 8, Op: OpAssert, Module: "m", Clause: "p(b)"}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		rec, n, err := DecodeFrame(b)
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("decoded size %d out of range (len %d)", n, len(b))
		}
		again := AppendFrame(nil, rec)
		if string(again) != string(b[:n]) {
			t.Fatalf("re-encode mismatch: %x vs %x", again, b[:n])
		}
	})
}
