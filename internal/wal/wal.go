// Package wal is the durable replicated write path under the clause
// retrieval engine: a segmented, append-only log of ASSERT/RETRACT
// records with monotonic per-shard sequence numbers. The retrieval
// side of this repository scales reads — board pools, shards, replica
// failover — but a mutation only existed in one server's memory. The
// WAL makes a write durable on one node (length-prefixed CRC32 frames,
// configurable fsync policy, torn-tail truncation on recovery) and
// consistent across a shard's replicas (the Shipper/Follower pair
// streams the log primary→replica; replicas apply records in sequence
// order, so identical logs yield identical stores).
//
// The log is the shard's authority on write order: the primary assigns
// sequence numbers at append time, replicas append the same records at
// the same sequence numbers, and recovery replays the log over the
// booted base store. Prefix semantics are the durability contract — a
// crash mid-append loses at most the torn tail, never the middle of
// the committed sequence, and never reorders it.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"clare/internal/fault"
	"clare/internal/telemetry"
)

// Fault-injection sites probed by the log. SiteAppend and SiteFsync
// fire inside Append/Sync (absorbed by the caller's retry rung, never
// client-visible); SiteShip fires in the Shipper before a replica push
// (shipping lag grows until the replica trips the staleness bound).
const (
	SiteAppend = fault.SiteWALAppend
	SiteFsync  = fault.SiteWALFsync
	SiteShip   = fault.SiteWALShip
)

// Op is the kind of one logged mutation.
type Op uint8

const (
	// OpAssert appends a clause to its predicate.
	OpAssert Op = 1
	// OpRetract removes the first clause unifying with the record's
	// clause from its predicate.
	OpRetract Op = 2
)

func (o Op) String() string {
	switch o {
	case OpAssert:
		return "assert"
	case OpRetract:
		return "retract"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// ParseOp maps the wire word back to an Op.
func ParseOp(s string) (Op, error) {
	switch s {
	case "assert":
		return OpAssert, nil
	case "retract":
		return OpRetract, nil
	}
	return 0, fmt.Errorf("wal: unknown op %q", s)
}

// Record is one logged mutation. Seq numbers are monotonic and dense
// (no gaps) per log; the primary assigns them, replicas preserve them.
type Record struct {
	Seq    uint64
	Op     Op
	Module string
	// Clause is the mutation's clause in Edinburgh source form without
	// the final '.' ("p(a, b)" or "p(X) :- q(X)").
	Clause string
}

// WireText renders the record as the space-separated wire form carried
// by the SYNC reply's R lines and the REPL request: "<seq> <op>
// <module> <clause>". Module must not contain spaces (module names come
// from file base names); the clause is the rest of the line.
func (r Record) WireText() string {
	return fmt.Sprintf("%d %s %s %s", r.Seq, r.Op, r.Module, r.Clause)
}

// ParseRecordText parses the wire form rendered by WireText.
func ParseRecordText(s string) (Record, error) {
	var r Record
	fields := strings.SplitN(s, " ", 4)
	if len(fields) != 4 {
		return r, fmt.Errorf("wal: bad record %q: want <seq> <op> <module> <clause>", s)
	}
	seq, err := strconv.ParseUint(fields[0], 10, 64)
	if err != nil || seq == 0 {
		return r, fmt.Errorf("wal: bad record seq %q", fields[0])
	}
	op, err := ParseOp(fields[1])
	if err != nil {
		return r, err
	}
	if fields[2] == "" || fields[3] == "" {
		return r, fmt.Errorf("wal: bad record %q: empty module or clause", s)
	}
	r.Seq, r.Op, r.Module, r.Clause = seq, op, fields[2], fields[3]
	return r, nil
}

// Frame format, little-endian:
//
//	uint32 payload length
//	uint32 CRC32 (IEEE) of the payload
//	payload:
//	  uint64 seq
//	  uint8  op
//	  uint16 len(module), module bytes
//	  uint32 len(clause), clause bytes
//
// A frame whose length field exceeds MaxRecordSize, whose payload is
// short, or whose CRC mismatches is torn: recovery truncates the
// segment there.
const (
	frameHeader = 8
	// MaxRecordSize bounds one encoded payload, mirroring the wire
	// protocol's per-line bound.
	MaxRecordSize = 4 * 1024 * 1024
)

// AppendFrame appends the record's encoded frame to dst.
func AppendFrame(dst []byte, r Record) []byte {
	payload := make([]byte, 0, 13+len(r.Module)+len(r.Clause))
	payload = binary.LittleEndian.AppendUint64(payload, r.Seq)
	payload = append(payload, byte(r.Op))
	payload = binary.LittleEndian.AppendUint16(payload, uint16(len(r.Module)))
	payload = append(payload, r.Module...)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(r.Clause)))
	payload = append(payload, r.Clause...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// DecodeFrame decodes one frame from the head of b, returning the
// record and the frame's total size. Any malformation — short buffer,
// oversized length, CRC mismatch, truncated payload fields — returns
// an error; the caller treats it as the torn tail.
func DecodeFrame(b []byte) (Record, int, error) {
	var r Record
	if len(b) < frameHeader {
		return r, 0, errShortFrame
	}
	n := binary.LittleEndian.Uint32(b)
	if n > MaxRecordSize {
		return r, 0, fmt.Errorf("wal: frame length %d exceeds %d", n, MaxRecordSize)
	}
	if uint32(len(b)-frameHeader) < n {
		return r, 0, errShortFrame
	}
	payload := b[frameHeader : frameHeader+int(n)]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[4:]) {
		return r, 0, errBadCRC
	}
	if len(payload) < 13 {
		return r, 0, fmt.Errorf("wal: payload too short (%d bytes)", len(payload))
	}
	r.Seq = binary.LittleEndian.Uint64(payload)
	r.Op = Op(payload[8])
	if r.Op != OpAssert && r.Op != OpRetract {
		return r, 0, fmt.Errorf("wal: unknown op byte %d", payload[8])
	}
	ml := int(binary.LittleEndian.Uint16(payload[9:]))
	rest := payload[11:]
	if len(rest) < ml+4 {
		return r, 0, fmt.Errorf("wal: module length %d overruns payload", ml)
	}
	r.Module = string(rest[:ml])
	cl := int(binary.LittleEndian.Uint32(rest[ml:]))
	rest = rest[ml+4:]
	if len(rest) != cl {
		return r, 0, fmt.Errorf("wal: clause length %d vs %d remaining", cl, len(rest))
	}
	r.Clause = string(rest)
	return r, frameHeader + int(n), nil
}

var (
	errShortFrame = errors.New("wal: short frame")
	errBadCRC     = errors.New("wal: frame CRC mismatch")
	// ErrSeqGap rejects an out-of-order explicit-seq append: a replica
	// may only extend its log densely.
	ErrSeqGap = errors.New("wal: sequence gap")
)

// FsyncPolicy decides when appended frames are flushed to stable
// storage.
type FsyncPolicy struct {
	// Always fsyncs after every append (and every batch); the durable
	// default.
	Always bool
	// Interval > 0 fsyncs from a background ticker instead; a crash
	// loses at most one interval of appends (they truncate as the torn
	// tail on recovery).
	Interval time.Duration
	// Neither set ("never"): the OS decides. Recovery semantics are
	// unchanged — the log is still a prefix — but the prefix may be
	// arbitrarily short after a power loss.
}

// ParseFsyncPolicy parses the -wal-fsync flag form: "always", "never",
// or a ticker interval such as "100ms".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncPolicy{Always: true}, nil
	case "never":
		return FsyncPolicy{}, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return FsyncPolicy{}, fmt.Errorf("wal: fsync policy %q: want always, never, or a positive interval", s)
	}
	return FsyncPolicy{Interval: d}, nil
}

func (p FsyncPolicy) String() string {
	switch {
	case p.Always:
		return "always"
	case p.Interval > 0:
		return p.Interval.String()
	}
	return "never"
}

// Options parameterise Open.
type Options struct {
	// Fsync is the flush policy (zero value = never).
	Fsync FsyncPolicy
	// SegmentSize rotates the active segment once it exceeds this many
	// bytes (0 = DefaultSegmentSize).
	SegmentSize int64
	// Faults, when non-nil, probes wal.append and wal.fsync.
	Faults *fault.Injector
	// Metrics, when non-nil, receives the clare_wal_* series.
	Metrics *telemetry.Registry
}

// DefaultSegmentSize is the rotation threshold when Options leaves it 0.
const DefaultSegmentSize = 16 << 20

// LogStats is a point-in-time view of the log for STATS keys.
type LogStats struct {
	FirstSeq  uint64
	LastSeq   uint64
	Segments  int
	Appends   int64
	Fsyncs    int64
	Bytes     int64
	Truncated int64 // torn-tail bytes discarded at Open
	Faults    int64 // injected wal.append/wal.fsync faults absorbed
}

// Log is one shard replica's write-ahead log: an ordered set of segment
// files under a directory, named wal-<first-seq>.log by the 16-hex-digit
// sequence number of their first record. All methods are safe for
// concurrent use; Range readers run lock-free against immutable prefix
// bytes.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File // active segment
	segs     []segment
	size     int64  // active segment size
	nextSeq  uint64 // seq the next append receives
	firstSeq uint64 // seq of the oldest retained record (0 = empty log)
	dirty    bool   // appended since last fsync

	appends   int64
	fsyncs    int64
	bytes     int64
	truncated int64
	faults    int64

	ticker *time.Ticker
	stop   chan struct{}
	done   chan struct{}

	met *logMetrics
}

// segment is one on-disk file: its path and the seq of its first record.
type segment struct {
	path  string
	first uint64
}

type logMetrics struct {
	appends  *telemetry.Counter
	fsyncs   *telemetry.Counter
	bytes    *telemetry.Counter
	segments *telemetry.Gauge
	faults   *telemetry.Counter
}

func newLogMetrics(reg *telemetry.Registry) *logMetrics {
	return &logMetrics{
		appends:  reg.Counter("clare_wal_appends_total", "records appended to the write-ahead log", nil),
		fsyncs:   reg.Counter("clare_wal_fsyncs_total", "write-ahead log fsync calls", nil),
		bytes:    reg.Counter("clare_wal_bytes_total", "bytes appended to the write-ahead log", nil),
		segments: reg.Gauge("clare_wal_segments", "write-ahead log segment files", nil),
		faults:   reg.Counter("clare_wal_faults_total", "injected wal faults absorbed by the log", nil),
	}
}

func segName(first uint64) string { return fmt.Sprintf("wal-%016x.log", first) }

// Open opens (creating if needed) the log under dir, recovering the
// committed prefix: segments replay in order, and the last segment is
// truncated at its first torn frame — a partial append left by a crash
// is discarded, never surfaced. A torn or out-of-sequence frame in a
// non-final segment is unrecoverable corruption and errors out.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = DefaultSegmentSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, nextSeq: 1, met: newLogMetrics(opts.Metrics)}

	names, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names) // 16-hex-digit first-seq names sort numerically
	for i, path := range names {
		first, err := parseSegName(path)
		if err != nil {
			return nil, err
		}
		last := i == len(names)-1
		if err := l.recoverSegment(path, first, last); err != nil {
			return nil, err
		}
	}
	if len(l.segs) == 0 {
		if err := l.openSegment(l.nextSeq); err != nil {
			return nil, err
		}
	} else {
		// Reopen the tail segment for appends.
		tail := l.segs[len(l.segs)-1]
		f, err := os.OpenFile(tail.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		l.f, l.size = f, st.Size()
	}
	l.met.segments.Set(float64(len(l.segs)))
	if opts.Fsync.Interval > 0 {
		l.ticker = time.NewTicker(opts.Fsync.Interval)
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.fsyncLoop()
	}
	return l, nil
}

func parseSegName(path string) (uint64, error) {
	base := filepath.Base(path)
	hexa := strings.TrimSuffix(strings.TrimPrefix(base, "wal-"), ".log")
	first, err := strconv.ParseUint(hexa, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("wal: bad segment name %s", base)
	}
	return first, nil
}

// recoverSegment replays one segment at Open. For the final segment a
// torn tail (bad frame, or a seq that does not continue the sequence)
// is truncated in place; anywhere else it is corruption.
func (l *Log) recoverSegment(path string, first uint64, isTail bool) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(l.segs) == 0 {
		l.nextSeq = first
	} else if l.nextSeq != first {
		return fmt.Errorf("wal: segment %s starts at %d, want %d", filepath.Base(path), first, l.nextSeq)
	}
	good := 0
	for off := 0; off < len(blob); {
		rec, n, err := DecodeFrame(blob[off:])
		if err != nil || rec.Seq != l.nextSeq {
			if !isTail {
				if err == nil {
					err = fmt.Errorf("wal: seq %d, want %d", rec.Seq, l.nextSeq)
				}
				return fmt.Errorf("wal: segment %s corrupt at offset %d: %w", filepath.Base(path), off, err)
			}
			// Torn tail: everything from here on is a partial append.
			l.truncated += int64(len(blob) - off)
			if err := os.Truncate(path, int64(off)); err != nil {
				return err
			}
			blob = blob[:off]
			break
		}
		if l.firstSeq == 0 {
			l.firstSeq = rec.Seq
		}
		l.nextSeq = rec.Seq + 1
		off += n
		good++
	}
	if good == 0 && isTail && len(l.segs) > 0 {
		// An empty (fully torn) tail segment: drop the file entirely so
		// the previous segment becomes the append tail.
		return os.Remove(path)
	}
	l.segs = append(l.segs, segment{path: path, first: first})
	l.bytes += int64(len(blob))
	return nil
}

// openSegment starts a fresh segment whose first record will be seq.
func (l *Log) openSegment(seq uint64) error {
	path := filepath.Join(l.dir, segName(seq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if l.f != nil {
		l.f.Sync() //nolint:errcheck // rotation flush is best-effort; policy fsync follows
		l.f.Close()
	}
	l.f, l.size = f, 0
	l.segs = append(l.segs, segment{path: path, first: seq})
	l.met.segments.Set(float64(len(l.segs)))
	return nil
}

// Append assigns the next sequence number to the mutation and appends
// its frame, fsyncing per policy. Injected wal.append faults are
// absorbed by one probe-free retry (the final rung cannot fault —
// mirroring the retrieval ladder, injected faults must never surface
// as client errors); real I/O errors return.
func (l *Log) Append(op Op, module, clause string) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec := Record{Seq: l.nextSeq, Op: op, Module: module, Clause: clause}
	if err := l.appendLocked(rec, true); err != nil {
		return 0, err
	}
	return rec.Seq, l.syncPolicyLocked()
}

// AppendBatch appends a transaction's records as one durability unit:
// every record gets consecutive sequence numbers and the policy fsync
// happens once after the last frame. Returns the seq of the last
// record.
func (l *Log) AppendBatch(recs []Record) (uint64, error) {
	if len(recs) == 0 {
		return 0, fmt.Errorf("wal: empty batch")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range recs {
		recs[i].Seq = l.nextSeq
		if err := l.appendLocked(recs[i], i == 0); err != nil {
			return 0, err
		}
	}
	return l.nextSeq - 1, l.syncPolicyLocked()
}

// AppendAt appends a record carrying an explicit sequence number — the
// replica path, where the primary already assigned it. The record must
// exactly extend the log (rec.Seq == LastSeq+1); anything else returns
// ErrSeqGap so the shipper rewinds instead of corrupting the order.
func (l *Log) AppendAt(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if rec.Seq != l.nextSeq {
		return fmt.Errorf("%w: appending seq %d, log at %d", ErrSeqGap, rec.Seq, l.nextSeq)
	}
	if err := l.appendLocked(rec, true); err != nil {
		return err
	}
	return l.syncPolicyLocked()
}

// appendLocked writes one frame, rotating first when the active segment
// is over the threshold. probe arms the wal.append fault site (batches
// probe once).
func (l *Log) appendLocked(rec Record, probe bool) error {
	if probe {
		if err := l.opts.Faults.Probe(SiteAppend, l.dir); err != nil {
			// Absorbed: count it and fall through to the probe-free write.
			l.faults++
			l.met.faults.Inc()
		}
	}
	if l.size >= l.opts.SegmentSize {
		if err := l.openSegment(rec.Seq); err != nil {
			return err
		}
	}
	frame := AppendFrame(nil, rec)
	if _, err := l.f.Write(frame); err != nil {
		return err
	}
	if l.firstSeq == 0 {
		l.firstSeq = rec.Seq
	}
	l.nextSeq = rec.Seq + 1
	l.size += int64(len(frame))
	l.bytes += int64(len(frame))
	l.dirty = true
	l.appends++
	l.met.appends.Inc()
	l.met.bytes.Add(int64(len(frame)))
	return nil
}

// syncPolicyLocked applies the fsync policy after an append. An
// injected wal.fsync fault downgrades this one flush to the OS's
// writeback (counted, never an error — durability degrades, the write
// path keeps serving); a real fsync error returns.
func (l *Log) syncPolicyLocked() error {
	if !l.opts.Fsync.Always {
		return nil
	}
	if err := l.opts.Faults.Probe(SiteFsync, l.dir); err != nil {
		l.faults++
		l.met.faults.Inc()
		return nil
	}
	return l.fsyncLocked()
}

func (l *Log) fsyncLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	l.fsyncs++
	l.met.fsyncs.Inc()
	return nil
}

// Sync flushes appended frames to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fsyncLocked()
}

func (l *Log) fsyncLoop() {
	defer close(l.done)
	for {
		select {
		case <-l.ticker.C:
			l.Sync() //nolint:errcheck // periodic flush: the next tick retries
		case <-l.stop:
			return
		}
	}
}

// LastSeq returns the newest appended sequence number (0 = empty log).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// FirstSeq returns the oldest retained sequence number (0 = empty log).
func (l *Log) FirstSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.firstSeq
}

// Stats returns a point-in-time view of the log.
func (l *Log) Stats() LogStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LogStats{
		FirstSeq:  l.firstSeq,
		LastSeq:   l.nextSeq - 1,
		Segments:  len(l.segs),
		Appends:   l.appends,
		Fsyncs:    l.fsyncs,
		Bytes:     l.bytes,
		Truncated: l.truncated,
		Faults:    l.faults,
	}
}

// Range calls fn for every record with from <= seq, in sequence order,
// stopping early when fn returns false. It reads committed bytes only
// (the record set is snapshotted under the mutex, then file reads run
// without it — appends never rewrite a committed prefix, so concurrent
// writers are safe).
func (l *Log) Range(from uint64, fn func(Record) bool) error {
	l.mu.Lock()
	last := l.nextSeq - 1
	segs := append([]segment(nil), l.segs...)
	l.mu.Unlock()
	if from == 0 {
		from = 1
	}
	for i, seg := range segs {
		// Skip whole segments below the range start.
		if i+1 < len(segs) && segs[i+1].first <= from {
			continue
		}
		blob, err := os.ReadFile(seg.path)
		if err != nil {
			return err
		}
		for off := 0; off < len(blob); {
			rec, n, err := DecodeFrame(blob[off:])
			if err != nil {
				// The tail may hold a frame newer than our snapshot or a
				// partial concurrent append; the snapshot bound below
				// guarantees we never report it.
				break
			}
			off += n
			if rec.Seq > last {
				return nil
			}
			if rec.Seq < from {
				continue
			}
			if !fn(rec) {
				return nil
			}
		}
	}
	return nil
}

// Suffix collects up to max records with seq >= from (max <= 0 means
// unlimited), plus the log's current last seq — the SYNC reply shape.
func (l *Log) Suffix(from uint64, max int) ([]Record, uint64, error) {
	var recs []Record
	err := l.Range(from, func(r Record) bool {
		recs = append(recs, r)
		return max <= 0 || len(recs) < max
	})
	return recs, l.LastSeq(), err
}

// Close flushes and closes the log. Further appends error.
func (l *Log) Close() error {
	if l.ticker != nil {
		l.ticker.Stop()
		close(l.stop)
		<-l.done
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.fsyncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

var _ io.Closer = (*Log)(nil)
