package wal

import (
	"sync"
	"time"

	"clare/internal/fault"
	"clare/internal/telemetry"
)

// Source reads a suffix of the primary's log: up to max records with
// seq >= from, plus the log's current last seq (so the shipper learns
// about writes it was not notified of). (*Log).Suffix satisfies it
// directly; the cluster router wraps a SYNC round-trip in one.
type Source func(from uint64, max int) ([]Record, uint64, error)

// Sink is one replica as the shipper sees it. Bootstrap reports the
// replica's applied seq so shipping resumes where the replica actually
// is (not where the shipper last saw it — the replica may have
// restarted and recovered from its own log). Apply delivers one record
// and returns the replica's applied seq afterwards; that reply is
// authoritative: a dup (seq <= applied) acks without re-applying, a
// gap leaves applied short so the shipper rewinds.
type Sink interface {
	Bootstrap() (uint64, error)
	Apply(Record) (uint64, error)
}

// ShipperConfig parameterises a Shipper.
type ShipperConfig struct {
	// Interval is the idle ship period (default 500ms). Notify wakes
	// the loop early, so the interval only bounds how stale a replica
	// gets when notifications are lost.
	Interval time.Duration
	// Batch caps records fetched per round (default 256).
	Batch int
	// Faults, when non-nil, probes wal.ship before each push round.
	Faults *fault.Injector
	// Metrics, when non-nil, receives clare_wal_shipped_total and the
	// lag gauge, labelled with Name.
	Metrics *telemetry.Registry
	// Name labels the shipper's metric series (e.g. the shard id).
	Name string
	// OnLag, when non-nil, is called after every round with the sink's
	// applied seq and the primary's last seq — the hook the cluster
	// layer uses to trip stale replicas.
	OnLag func(applied, last uint64)
}

// Shipper streams one log to one sink: a background loop that wakes on
// Notify (or every Interval) and pushes the suffix the sink is missing.
// An injected wal.ship fault skips the round — lag grows, the replica
// eventually trips the staleness bound, and the next clean round
// catches it back up; a failed Apply or Bootstrap likewise just ends
// the round (the sink may be down; the next round retries from a fresh
// Bootstrap).
type Shipper struct {
	src  Source
	sink Sink
	cfg  ShipperConfig

	mu      sync.Mutex
	applied uint64
	booted  bool
	target  uint64
	faults  int64
	shipped int64

	wake chan struct{}
	stop chan struct{}
	done chan struct{}

	metShipped *telemetry.Counter
	metLag     *telemetry.Gauge
	metFaults  *telemetry.Counter
}

// NewShipper builds a shipper; call Run to start it.
func NewShipper(src Source, sink Sink, cfg ShipperConfig) *Shipper {
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 256
	}
	labels := telemetry.Labels{"target": cfg.Name}
	return &Shipper{
		src:  src,
		sink: sink,
		cfg:  cfg,
		wake: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
		metShipped: cfg.Metrics.Counter("clare_wal_shipped_total",
			"records shipped primary to replica", labels),
		metLag: cfg.Metrics.Gauge("clare_wal_replica_lag",
			"records the replica trails the primary by", labels),
		metFaults: cfg.Metrics.Counter("clare_wal_faults_total",
			"injected wal faults absorbed by the shipper", labels),
	}
}

// Run starts the ship loop; stop it with Close.
func (s *Shipper) Run() {
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.cfg.Interval)
		defer t.Stop()
		for {
			s.round()
			select {
			case <-s.stop:
				return
			case <-s.wake:
			case <-t.C:
			}
		}
	}()
}

// Notify tells the shipper the primary's log reached seq; the loop
// wakes if idle.
func (s *Shipper) Notify(seq uint64) {
	s.mu.Lock()
	if seq > s.target {
		s.target = seq
	}
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Applied reports the sink's last acknowledged seq.
func (s *Shipper) Applied() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// Shipped reports the total records pushed and acknowledged.
func (s *Shipper) Shipped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shipped
}

// Faults reports the injected wal.ship faults absorbed.
func (s *Shipper) Faults() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.faults
}

// CatchUp runs ship rounds synchronously until the sink has every
// record the source holds (or a round stops making progress). Tests
// and the cluster layer's startup path use it; the background loop
// calls the same round.
func (s *Shipper) CatchUp() {
	for s.round() {
	}
}

// round ships one batch. It reports whether another round would make
// progress (more records are known to be pending).
func (s *Shipper) round() bool {
	if err := s.cfg.Faults.Probe(fault.SiteWALShip, s.cfg.Name); err != nil {
		s.mu.Lock()
		s.faults++
		s.mu.Unlock()
		s.metFaults.Inc()
		return false
	}
	s.mu.Lock()
	booted := s.booted
	s.mu.Unlock()
	if !booted {
		applied, err := s.sink.Bootstrap()
		if err != nil {
			return false
		}
		s.mu.Lock()
		s.applied, s.booted = applied, true
		s.mu.Unlock()
	}
	s.mu.Lock()
	from := s.applied + 1
	s.mu.Unlock()
	recs, last, err := s.src(from, s.cfg.Batch)
	if err != nil {
		return false
	}
	shipped := 0
	var applied uint64
	s.mu.Lock()
	applied = s.applied
	s.mu.Unlock()
	for _, rec := range recs {
		got, err := s.sink.Apply(rec)
		if err != nil {
			// The sink is unreachable or refused the record: force a
			// fresh Bootstrap next round rather than guessing its state.
			s.mu.Lock()
			s.booted = false
			s.mu.Unlock()
			return false
		}
		if got < applied {
			// The sink went backwards (restarted and lost unsynced tail):
			// rewind to its authoritative position.
			s.mu.Lock()
			s.applied, applied = got, got
			s.mu.Unlock()
			s.metLag.Set(float64(last - got))
			return true
		}
		applied = got
		if got >= rec.Seq {
			shipped++
		}
		if got < rec.Seq {
			// Gap at the sink: stop the batch, next round refetches from
			// its reply.
			break
		}
	}
	s.mu.Lock()
	s.applied = applied
	if last > s.target {
		s.target = last
	}
	target := s.target
	s.shipped += int64(shipped)
	s.mu.Unlock()
	s.metShipped.Add(int64(shipped))
	lag := uint64(0)
	if target > applied {
		lag = target - applied
	}
	s.metLag.Set(float64(lag))
	if s.cfg.OnLag != nil {
		s.cfg.OnLag(applied, target)
	}
	return lag > 0 && shipped > 0
}

// Close stops the ship loop.
func (s *Shipper) Close() {
	select {
	case <-s.stop:
		return
	default:
	}
	close(s.stop)
	<-s.done
}

// FollowerConfig parameterises a Follower.
type FollowerConfig struct {
	// Interval is the poll period (default 1s).
	Interval time.Duration
	// Batch caps records fetched per round (default 256).
	Batch int
}

// Follower is the pull half of replication: a restarted replica (or
// one whose primary lacks a push shipper) periodically fetches the log
// suffix past its own applied seq and applies it locally. Fetch is a
// SYNC round-trip against the primary; Apply lands one record in the
// local server+log and returns the new applied seq.
type Follower struct {
	fetch Source
	apply func(Record) (uint64, error)
	seq   func() uint64 // local applied seq
	cfg   FollowerConfig

	stop chan struct{}
	done chan struct{}
}

// NewFollower builds a follower; call Run to start polling, or CatchUp
// for a synchronous drain.
func NewFollower(fetch Source, apply func(Record) (uint64, error), seq func() uint64, cfg FollowerConfig) *Follower {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 256
	}
	return &Follower{
		fetch: fetch,
		apply: apply,
		seq:   seq,
		cfg:   cfg,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// CatchUp fetches and applies until the local applied seq reaches the
// source's last seq. It returns the records applied and the first
// error (after which it stops; partial progress is kept — replication
// is idempotent and resumable by construction).
func (f *Follower) CatchUp() (int, error) {
	total := 0
	for {
		recs, last, err := f.fetch(f.seq()+1, f.cfg.Batch)
		if err != nil {
			return total, err
		}
		for _, rec := range recs {
			if rec.Seq <= f.seq() {
				continue // dup: already applied
			}
			if _, err := f.apply(rec); err != nil {
				return total, err
			}
			total++
		}
		if f.seq() >= last || len(recs) == 0 {
			return total, nil
		}
	}
}

// Run polls CatchUp every Interval until Close.
func (f *Follower) Run() {
	go func() {
		defer close(f.done)
		t := time.NewTicker(f.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-f.stop:
				return
			case <-t.C:
				f.CatchUp() //nolint:errcheck // polling: next tick retries
			}
		}
	}()
}

// Close stops the poll loop.
func (f *Follower) Close() {
	select {
	case <-f.stop:
		return
	default:
	}
	close(f.stop)
	<-f.done
}
