package cluster

import (
	"fmt"
	"testing"
)

func TestShardOfRange(t *testing.T) {
	for n := 1; n <= 9; n++ {
		for i := 0; i < 200; i++ {
			key := fmt.Sprintf("pred%d/2", i)
			s := ShardOf(key, n)
			if s < 0 || s >= n {
				t.Fatalf("ShardOf(%q, %d) = %d, out of range", key, n, s)
			}
			if s != ShardOf(key, n) {
				t.Fatalf("ShardOf(%q, %d) not deterministic", key, n)
			}
		}
	}
	if got := ShardOf("anything/3", 0); got != 0 {
		t.Errorf("ShardOf(_, 0) = %d, want 0", got)
	}
	if got := ShardOf("anything/3", 1); got != 0 {
		t.Errorf("ShardOf(_, 1) = %d, want 0", got)
	}
}

// TestShardOfDistribution: rendezvous hashing must spread a realistic
// predicate population roughly evenly — no shard may starve.
func TestShardOfDistribution(t *testing.T) {
	const keys, shards = 2000, 8
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		counts[ShardOf(fmt.Sprintf("pred%d/%d", i, i%5), shards)]++
	}
	want := keys / shards
	for s, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("shard %d holds %d keys, want ≈%d (distribution %v)", s, c, want, counts)
		}
	}
}

// TestShardOfMinimalDisruption: growing the cluster from n to n+1 shards
// must only move keys whose argmax became the new shard — every key that
// moves, moves to shard n.
func TestShardOfMinimalDisruption(t *testing.T) {
	const keys = 1000
	for n := 2; n <= 6; n++ {
		moved := 0
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("pred%d/2", i)
			before, after := ShardOf(key, n), ShardOf(key, n+1)
			if before != after {
				moved++
				if after != n {
					t.Fatalf("ShardOf(%q): %d→%d shards moved it %d→%d, not to the new shard",
						key, n, n+1, before, after)
				}
			}
		}
		// Expectation is keys/(n+1); allow a generous band.
		if moved == 0 || moved > keys/2 {
			t.Errorf("%d→%d shards moved %d/%d keys", n, n+1, moved, keys)
		}
	}
}

func TestGoalIndicator(t *testing.T) {
	for _, tc := range []struct {
		goal, want string
	}{
		{"married_couple(husband1, X)", "married_couple/2"},
		{"p(a)", "p/1"},
		{"halt", "halt/0"},
		{"f(g(X), Y, 3)", "f/3"},
	} {
		got, err := GoalIndicator(tc.goal)
		if err != nil {
			t.Errorf("GoalIndicator(%q): %v", tc.goal, err)
			continue
		}
		if got != tc.want {
			t.Errorf("GoalIndicator(%q) = %q, want %q", tc.goal, got, tc.want)
		}
	}
	for _, bad := range []string{"", "f(", "X", "42"} {
		if pi, err := GoalIndicator(bad); err == nil {
			t.Errorf("GoalIndicator(%q) = %q, want error", bad, pi)
		}
	}
}
