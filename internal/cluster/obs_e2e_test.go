package cluster

import (
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"clare/internal/core"
	"clare/internal/crs"
	"clare/internal/fault"
	"clare/internal/telemetry"
)

// startObsBackend boots one backend with the full diagnosis stack armed
// and a fault injector delaying every clause-file read — pure latency
// at a disk site, mirroring `crsd -fault disk.read=1,delay=...` (a slow
// spindle, not a broken one).
func startObsBackend(t *testing.T, preds []testPred, delay time.Duration) (*crs.Server, net.Listener) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Tracer = telemetry.NewTracer(32)
	cfg.Flight = telemetry.NewFlightRecorder(128)
	cfg.Faults = fault.New(1).Add(fault.Rule{
		Site: fault.SiteDiskRead, Probability: 1, Delay: delay,
	})
	r, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := crs.NewServer(r)
	s.SetFlight(cfg.Flight, "")
	s.SetSlowLog(telemetry.NewSlowQueryLog(16, time.Millisecond), delay/4, 0)
	s.SetSLO(telemetry.NewSLOTracker(telemetry.SLO{P99: delay / 4}))
	for _, p := range preds {
		if err := s.Load("test", p.clauses); err != nil {
			t.Fatal(err)
		}
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { l.Close() })
	return s, l
}

// TestClusterSlowCaptureEndToEnd is the acceptance path for the
// observability stack across two processes' worth of machinery: a
// backend whose retrievals of one predicate are slowed by an injected
// fault latency, fronted by a router with its own flight recorder and
// SLO tracker.
//
//   - the slowed retrieval produces a slow capture on the backend with a
//     monotone EXPLAIN funnel and a trace ID resolving in the backend's
//     flight dump;
//   - an SLO set below the injected latency shows nonzero burn in the
//     slo.* STATS of both the backend and the router overlay;
//   - a flight snapshot (the SIGTERM/panic path) is valid JSONL.
func TestClusterSlowCaptureEndToEnd(t *testing.T) {
	preds := []testPred{facts("obsfact", 12)}
	const delay = 10 * time.Millisecond
	backend, l := startObsBackend(t, preds, delay)

	var routerSLO *telemetry.SLOTracker
	var routerFlight *telemetry.FlightRecorder
	r := newTestRouter(t, [][]string{{l.Addr().String()}}, func(cfg *Config) {
		routerSLO = telemetry.NewSLOTracker(telemetry.SLO{P99: delay / 4})
		routerFlight = telemetry.NewFlightRecorder(64)
		cfg.SLO = routerSLO
		cfg.Flight = routerFlight
	})
	front := NewServer(r)
	fl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go front.Serve(fl)
	t.Cleanup(func() { fl.Close() })

	c, err := crs.Dial(fl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	res, err := c.Retrieve("auto", "obsfact(X, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clauses) != 12 {
		t.Fatalf("retrieved %d clauses, want 12", len(res.Clauses))
	}
	if wall := time.Since(start); wall < delay {
		t.Fatalf("injected latency did not fire: wall %v < %v", wall, delay)
	}

	// 1. The backend captured the slow query, EXPLAIN funnel monotone.
	deadline := time.Now().Add(5 * time.Second)
	for backend.SlowLog().Captured() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow capture never landed on the backend")
		}
		time.Sleep(time.Millisecond)
	}
	caps := backend.SlowLog().Tail(0)
	if len(caps) == 0 {
		t.Fatal("slow log tail empty after capture")
	}
	capt := caps[len(caps)-1]
	if capt.Predicate != "obsfact/2" || capt.WallNS < int64(delay) {
		t.Errorf("capture = %+v", capt)
	}
	prof := make(map[string]string, len(capt.Profile))
	for _, kv := range capt.Profile {
		prof[kv.Key] = kv.Value
	}
	if prof["candidates.total"] == "" || prof["candidates.after_fs1"] == "" {
		t.Errorf("capture profile missing funnel counts: %v", capt.Profile)
	}

	// 2. The capture's trace ID resolves in the backend's flight dump.
	if capt.TraceID == 0 {
		t.Error("capture missing trace ID")
	}
	var matched *telemetry.FlightRecord
	for _, rec := range backend.Flight().Snapshot(0) {
		if rec.TraceID == capt.TraceID {
			matched = rec
		}
	}
	if matched == nil {
		t.Fatalf("capture trace %d not in the backend flight dump", capt.TraceID)
	}
	if !(matched.Total >= matched.AfterFS1 && matched.AfterFS1 >= matched.AfterFS2) {
		t.Errorf("flight funnel not monotone: %+v", matched)
	}
	if matched.WallNS < int64(delay) {
		t.Errorf("flight wall %v below the injected %v", time.Duration(matched.WallNS), delay)
	}

	// 3. Nonzero SLO burn on the backend's own STATS...
	direct, err := crs.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	kv, err := direct.Stats()
	direct.Close()
	if err != nil {
		t.Fatal(err)
	}
	if kv["slo.enabled"] != 1 || kv["slo.slow"] < 1 || kv["slo.burn.short.milli"] <= 0 {
		t.Errorf("backend slo stats: enabled=%d slow=%d burn=%d",
			kv["slo.enabled"], kv["slo.slow"], kv["slo.burn.short.milli"])
	}

	// ...and on the router overlay, both the aggregated backend view and
	// the router's own observation of the routed call.
	kv, err = c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if kv["slo.enabled"] != 1 || kv["slo.burn.short.milli"] <= 0 {
		t.Errorf("cluster slo overlay: enabled=%d burn=%d", kv["slo.enabled"], kv["slo.burn.short.milli"])
	}
	if kv["cluster.slo.burn.short.milli"] <= 0 {
		t.Errorf("cluster.slo.burn.short.milli = %d, want > 0", kv["cluster.slo.burn.short.milli"])
	}
	if st := routerSLO.Status(); st.Requests < 1 || st.Slow < 1 {
		t.Errorf("router-side SLO tracker: %+v", st)
	}
	if kv["cluster.flight.recorded"] < 1 {
		t.Errorf("cluster.flight.recorded = %d", kv["cluster.flight.recorded"])
	}
	if recs := routerFlight.Snapshot(0); len(recs) == 0 {
		t.Error("router flight ring empty after a routed retrieval")
	} else if recs[len(recs)-1].WallNS < int64(delay) {
		t.Errorf("router flight record wall %v below the injected %v",
			time.Duration(recs[len(recs)-1].WallNS), delay)
	}

	// 4. The SIGTERM/panic snapshot path leaves valid JSONL behind.
	snap := filepath.Join(t.TempDir(), "crash.flight")
	if err := backend.Flight().SnapshotToFile(snap); err != nil {
		t.Fatal(err)
	}
	body, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("flight snapshot empty")
	}
	for _, ln := range lines {
		if !json.Valid([]byte(ln)) {
			t.Errorf("snapshot line not valid JSON: %s", ln)
		}
	}
}

// TestClusterSlowTailScatterGather: the front-end's SLOWLOG verb
// gathers captures from every backend group.
func TestClusterSlowTailScatterGather(t *testing.T) {
	preds := []testPred{facts("obsfact", 8)}
	const delay = 10 * time.Millisecond
	_, l := startObsBackend(t, preds, delay)
	r := newTestRouter(t, [][]string{{l.Addr().String()}}, nil)
	front := NewServer(r)
	fl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go front.Serve(fl)
	t.Cleanup(func() { fl.Close() })

	c, err := crs.Dial(fl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Retrieve("auto", "obsfact(X, Y)"); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		caps, err := c.SlowTail(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(caps) > 0 {
			if caps[0].Predicate != "obsfact/2" {
				t.Errorf("gathered capture = %+v", caps[0])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("SLOWLOG through the front-end never surfaced the backend capture")
		}
		time.Sleep(time.Millisecond)
	}

	// FLIGHT through the front-end serves the router's own ring (empty
	// here: no recorder armed), not an error.
	if recs, err := c.Flight(0); err != nil || len(recs) != 0 {
		t.Errorf("front-end FLIGHT = %d records, err %v", len(recs), err)
	}
}
