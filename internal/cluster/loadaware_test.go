package cluster

import (
	"net"
	"testing"
	"time"

	"clare/internal/core"
	"clare/internal/crs"
)

// TestProbeDiscoversBackendCapability arms a connection against a
// native-engine backend: the one-shot STATS probe must latch the
// engine kind and scan-worker count, and the service-time prior must
// drop accordingly.
func TestProbeDiscoversBackendCapability(t *testing.T) {
	cfg := core.DefaultConfig()
	var err error
	if cfg.Engine, err = core.ParseEngine("native"); err != nil {
		t.Fatal(err)
	}
	cfg.ScanWorkers = 4
	r, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := crs.NewServer(r)
	p := facts("cap", 4)
	if err := s.Load("test", p.clauses); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { l.Close() })

	n := &node{addr: l.Addr().String()}
	rcfg := Config{WireTimeout: 2 * time.Second, PoolSize: 1}
	c, pooled, err := n.get(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if pooled {
		t.Fatal("fresh node returned a pooled connection")
	}
	if !n.probed.Load() {
		t.Error("probe did not latch")
	}
	if !n.native.Load() {
		t.Error("native engine not discovered through STATS probe")
	}
	if got := n.workers.Load(); got != 4 {
		t.Errorf("scan workers = %d, want 4", got)
	}
	if est := n.serviceEstimate(nil); est >= simServicePrior {
		t.Errorf("native service estimate %v not under the sim prior %v", est, simServicePrior)
	}
}

// TestProbeSimBackendKeepsSimPrior: a simulation backend probes as
// non-native and keeps the slower prior.
func TestProbeSimBackendKeepsSimPrior(t *testing.T) {
	p := facts("simcap", 4)
	_, l := startBackend(t, []testPred{p})
	n := &node{addr: l.Addr().String()}
	c, _, err := n.get(Config{WireTimeout: 2 * time.Second, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if n.native.Load() {
		t.Error("sim backend discovered as native")
	}
	if est := n.serviceEstimate(nil); est != simServicePrior {
		t.Errorf("sim service estimate = %v, want the sim prior %v", est, simServicePrior)
	}
}

// TestCandidatesRankByObservedServiceTime: once the router holds
// latency samples, candidate order follows observed P90 — the
// declared-second but faster replica ranks first.
func TestCandidatesRankByObservedServiceTime(t *testing.T) {
	r, err := NewRouter(Config{Shards: [][]string{{"a:1", "b:1"}}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	g := r.groups[0]
	for i := 0; i < 16; i++ {
		r.nodeLat.Observe("a:1", 5*time.Millisecond)
		r.nodeLat.Observe("b:1", 200*time.Microsecond)
	}
	cands := g.candidates(r)
	if cands[0].addr != "b:1" {
		t.Errorf("candidates[0] = %s, want the faster b:1", cands[0].addr)
	}
}

// TestCandidatesOutstandingPenalty: equal service times, but one
// replica is loaded with in-flight requests — the idle one must rank
// first.
func TestCandidatesOutstandingPenalty(t *testing.T) {
	r, err := NewRouter(Config{Shards: [][]string{{"a:1", "b:1"}}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	g := r.groups[0]
	g.nodes[0].outstanding.Store(3)
	cands := g.candidates(r)
	if cands[0].addr != "b:1" {
		t.Errorf("candidates[0] = %s, want the idle b:1", cands[0].addr)
	}
}
