package cluster

// Replicated write path: each shard group's FIRST configured address is
// its primary — the only node that sequences writes. The router routes
// WRITE (autocommit assert/retract) and pass-through transactions to
// the primary, then ships the primary's WAL to the remaining replicas
// with one wal.Shipper per replica. Replica applied-seq watermarks feed
// the staleness bound: a replica trailing the primary by more than
// Config.MaxLag records is marked stale and demoted in the retrieval
// candidate order, exactly as a sick board drops down the degradation
// ladder — it keeps serving only when nothing fresher can.
//
// There is deliberately no write failover: a write that fails over to a
// replica would fork the log. When the primary is down, writes fail
// fast with the primary's error and retrievals keep flowing through the
// replicas.

import (
	"errors"
	"fmt"
	"strings"

	"clare/internal/crs"
	"clare/internal/wal"
)

// primary is the shard group's write head: the first configured address.
func (g *group) primary() *node { return g.nodes[0] }

// Assert routes one autocommit assert (clause source without the final
// '.') to the owning shard's primary and returns the assigned log seq.
func (r *Router) Assert(clause string) (uint64, error) {
	return r.Write("assert", clause)
}

// Retract routes one autocommit retract to the owning shard's primary.
func (r *Router) Retract(clause string) (uint64, error) {
	return r.Write("retract", clause)
}

// Write routes one autocommit write to the primary of the shard owning
// the clause's head predicate. Writes never fail over (a write applied
// on a replica would fork the log): the primary's error surfaces to the
// caller, who may retry once the primary is back.
func (r *Router) Write(op, clause string) (uint64, error) {
	if _, err := wal.ParseOp(op); err != nil {
		return 0, err
	}
	head := clause
	if h, _, ok := strings.Cut(clause, ":-"); ok {
		head = h
	}
	pi, err := GoalIndicator(strings.TrimSpace(head))
	if err != nil {
		return 0, err
	}
	shard := ShardOf(pi, len(r.groups))
	g := r.groups[shard]
	p := g.primary()
	seq, err := callNode(r, p, func(c *crs.Client) (uint64, error) {
		if op == "assert" {
			return c.AssertWithTimeout(clause, r.cfg.CallTimeout)
		}
		return c.RetractWithTimeout(clause, r.cfg.CallTimeout)
	})
	if err != nil {
		var se *crs.ServerError
		if !errors.As(err, &se) {
			// Transport failure: health bookkeeping as for a failed read,
			// except no ladder below — the error goes straight up.
			p.strike(r)
		}
		r.met.writeErrors.Inc()
		return 0, err
	}
	p.clear(r)
	r.writes.Add(1)
	r.met.writes[shard].Inc()
	for _, sh := range g.shippers {
		sh.Notify(seq)
	}
	return seq, nil
}

// NotifyShard wakes the shard's shippers without a seq hint — used
// after a pass-through transaction commit, whose assigned seqs only the
// primary sees.
func (r *Router) NotifyShard(shard int) {
	if shard < 0 || shard >= len(r.groups) {
		return
	}
	for _, sh := range r.groups[shard].shippers {
		sh.Notify(0)
	}
}

// logChunk carries one SYNC reply through the generic callNode.
type logChunk struct {
	recs []wal.Record
	last uint64
}

// SyncLog proxies a log-suffix fetch to the shard's primary (the only
// node whose log is authoritative).
func (r *Router) SyncLog(shard int, from uint64) ([]wal.Record, uint64, error) {
	if shard < 0 || shard >= len(r.groups) {
		return nil, 0, fmt.Errorf("cluster: no such shard %d (have %d)", shard, len(r.groups))
	}
	g := r.groups[shard]
	chunk, err := callNode(r, g.primary(), func(c *crs.Client) (logChunk, error) {
		recs, last, err := c.SyncLog(shard, from)
		return logChunk{recs, last}, err
	})
	if err != nil {
		return nil, 0, err
	}
	return chunk.recs, chunk.last, nil
}

// nodeSink adapts one replica node to the shipper's Sink: Bootstrap
// reads the replica's wal.applied watermark over STATS (authoritative
// across replica restarts — a recovered replica reports how far its own
// log actually got), Apply lands one primary-sequenced record via REPL.
type nodeSink struct {
	r *Router
	n *node
}

func (s *nodeSink) Bootstrap() (uint64, error) {
	m, err := callNode(s.r, s.n, func(c *crs.Client) (map[string]int64, error) {
		return c.StatsWithTimeout(s.r.cfg.CallTimeout)
	})
	if err != nil {
		return 0, err
	}
	return uint64(m["wal.applied"]), nil
}

func (s *nodeSink) Apply(rec wal.Record) (uint64, error) {
	return callNode(s.r, s.n, func(c *crs.Client) (uint64, error) {
		return c.ReplWithTimeout(rec, s.r.cfg.CallTimeout)
	})
}

// StartReplication builds and starts one log shipper per replica (every
// non-primary node of every multi-node group). Idempotent; Close stops
// the shippers. Shippers dial lazily and absorb unreachable backends by
// retrying next round, so starting replication before the backends are
// up is fine.
func (r *Router) StartReplication() {
	r.replOnce.Do(func() {
		for _, g := range r.groups {
			for _, n := range g.nodes[1:] {
				sh := r.newShipper(g, n)
				g.shippers = append(g.shippers, sh)
				sh.Run()
			}
		}
	})
}

// CatchUpReplication synchronously drives every shipper until its
// replica holds every record the primary does — the deterministic
// variant of waiting out the ship interval. Requires StartReplication.
func (r *Router) CatchUpReplication() {
	for _, g := range r.groups {
		for _, sh := range g.shippers {
			sh.CatchUp()
		}
	}
}

func (r *Router) newShipper(g *group, n *node) *wal.Shipper {
	src := func(from uint64, max int) ([]wal.Record, uint64, error) {
		chunk, err := callNode(r, g.primary(), func(c *crs.Client) (logChunk, error) {
			recs, last, err := c.SyncLog(g.shard, from)
			return logChunk{recs, last}, err
		})
		if err != nil {
			return nil, 0, err
		}
		return chunk.recs, chunk.last, nil
	}
	maxLag := r.cfg.MaxLag
	return wal.NewShipper(src, &nodeSink{r: r, n: n}, wal.ShipperConfig{
		Interval: r.cfg.ShipInterval,
		Faults:   r.cfg.Faults,
		Metrics:  r.cfg.Metrics,
		Name:     n.addr,
		OnLag: func(applied, last uint64) {
			lag := uint64(0)
			if last > applied {
				lag = last - applied
			}
			n.lag.Store(lag)
			stale := lag > maxLag
			if n.stale.Swap(stale) != stale {
				if stale {
					r.met.stale.Add(1)
				} else {
					r.met.stale.Add(-1)
				}
			}
		},
	})
}
