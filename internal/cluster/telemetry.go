package cluster

import (
	"strconv"

	"clare/internal/telemetry"
)

// routerMetrics holds the router's registry handles. Everything is
// nil-safe: a router without a registry pays one nil check per event,
// matching the conventions of internal/core and internal/crs.
type routerMetrics struct {
	// requests/failovers/writes are per-shard counters, indexed by shard.
	requests  []*telemetry.Counter
	failovers []*telemetry.Counter
	writes    []*telemetry.Counter

	fanouts     *telemetry.Counter
	errors      *telemetry.Counter
	writeErrors *telemetry.Counter
	latency     *telemetry.Histogram
	tripped     *telemetry.Gauge
	stale       *telemetry.Gauge
	trips       *telemetry.Counter
	readmits    *telemetry.Counter
	hedges      *telemetry.Counter
	hedgeWins   *telemetry.Counter
}

func newRouterMetrics(reg *telemetry.Registry, shards int) *routerMetrics {
	m := &routerMetrics{
		requests:  make([]*telemetry.Counter, shards),
		failovers: make([]*telemetry.Counter, shards),
		writes:    make([]*telemetry.Counter, shards),
	}
	for i := 0; i < shards; i++ {
		shard := telemetry.Labels{"shard": strconv.Itoa(i)}
		m.requests[i] = reg.Counter("clare_cluster_requests_total",
			"cluster retrievals served per shard group", shard)
		m.failovers[i] = reg.Counter("clare_cluster_failovers_total",
			"replica failovers performed per shard group", shard)
		m.writes[i] = reg.Counter("clare_cluster_writes_total",
			"writes routed to the shard group's primary", shard)
	}
	m.fanouts = reg.Counter("clare_cluster_fanouts_total",
		"retrievals scattered to every shard group", nil)
	m.errors = reg.Counter("clare_cluster_errors_total",
		"routed retrievals that failed after the failover ladder", nil)
	m.writeErrors = reg.Counter("clare_cluster_write_errors_total",
		"routed writes rejected or lost at the shard primary", nil)
	m.stale = reg.Gauge("clare_cluster_replicas_stale",
		"replicas currently beyond the staleness bound", nil)
	m.latency = reg.Histogram("clare_cluster_request_seconds",
		"wall time of one routed retrieval including failovers", nil, nil)
	m.tripped = reg.Gauge("clare_cluster_nodes_tripped",
		"backend nodes currently tripped out of rotation", nil)
	m.trips = reg.Counter("clare_cluster_node_trips_total",
		"backend nodes tripped after consecutive failures", nil)
	m.readmits = reg.Counter("clare_cluster_node_readmits_total",
		"tripped backend nodes re-admitted on probation", nil)
	m.hedges = reg.Counter("clare_cluster_hedges_total",
		"duplicate requests fired after the hedge budget expired", nil)
	m.hedgeWins = reg.Counter("clare_cluster_hedge_wins_total",
		"hedged duplicates that answered before the primary", nil)
	return m
}
