// Package cluster scales the CRS out: it partitions a knowledge base
// across N CRS backends and serves retrievals through a scatter-gather
// router. The paper's CRS mediates between many clients and a single
// CLARE chassis (§2.2); at the §1 scale target (3000 predicates, 3M
// facts) one board cage is already strained, so the cluster layer
// composes many of them. The unit of partitioning is the predicate: a
// predicate's clause file lives whole on exactly one shard group, so
// FS1/FS2 filtering and clause order are untouched by distribution —
// the router only decides *which* chassis runs the search call.
//
// Placement uses rendezvous (highest-random-weight) hashing keyed by
// predicate indicator. kbc's partitioned build (-shards) and the
// router share ShardOf, so routing is consistent with data placement
// by construction; resizing the cluster moves only the predicates
// whose argmax changes, not ~everything as mod-N hashing would.
package cluster

import (
	"fmt"

	"clare/internal/parse"
	"clare/internal/term"
)

// ShardOf places a predicate-indicator key ("functor/arity") on one of
// n shards by rendezvous hashing: the key scores every shard with an
// FNV-1a hash of key#shard, and the highest score wins. Deterministic
// across processes — the compiler, the router, and tests all agree.
func ShardOf(key string, n int) int {
	if n <= 1 {
		return 0
	}
	best, bestScore := 0, uint64(0)
	for i := 0; i < n; i++ {
		score := fnv1a(key, i)
		if score > bestScore || (score == bestScore && i < best) {
			best, bestScore = i, score
		}
	}
	return best
}

// fnv1a hashes key#shard with 64-bit FNV-1a.
func fnv1a(key string, shard int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	h ^= '#'
	h *= prime64
	// Mix the shard number digit by digit (most-significant first).
	var digits [20]byte
	n := 0
	for v := shard; ; v /= 10 {
		digits[n] = byte('0' + v%10)
		n++
		if v < 10 {
			break
		}
	}
	for i := n - 1; i >= 0; i-- {
		h ^= uint64(digits[i])
		h *= prime64
	}
	return h
}

// GoalIndicator parses an Edinburgh goal (no final '.') and returns its
// predicate-indicator key "functor/arity" — the router's routing key.
func GoalIndicator(goal string) (string, error) {
	t, err := parse.Term(goal)
	if err != nil {
		return "", err
	}
	switch t := term.Deref(t).(type) {
	case term.Atom:
		return string(t) + "/0", nil
	case *term.Compound:
		return fmt.Sprintf("%s/%d", t.Functor, len(t.Args)), nil
	}
	return "", fmt.Errorf("cluster: goal %q is not callable", goal)
}
