package cluster

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clare/internal/core"
	"clare/internal/crs"
	"clare/internal/fault"
	"clare/internal/telemetry"
	"clare/internal/wal"
)

// Router defaults.
const (
	// DefaultWireTimeout bounds each backend dial and wire read/write.
	// Much tighter than crs.DefaultTimeout: a slow replica should trip
	// the failover ladder, not stall the client for half a minute.
	DefaultWireTimeout = 5 * time.Second
	// DefaultCallTimeout is the per-shard request budget (the per-call
	// override handed to crs.Client.RetrieveWithTimeout).
	DefaultCallTimeout = 2 * time.Second
	// DefaultTripThreshold trips a backend out of rotation after this
	// many consecutive failed calls.
	DefaultTripThreshold = 3
	// DefaultProbePeriod is how long a tripped backend cools off before
	// a probationary re-admission.
	DefaultProbePeriod = 2 * time.Second
	// DefaultPoolSize is how many idle connections each backend keeps.
	DefaultPoolSize = 8
	// DefaultMaxLag is how many log records a replica may trail its
	// primary before it is marked stale and demoted in candidate order.
	DefaultMaxLag = 1024
	// DefaultShipInterval is the idle log-shipping period per replica
	// (Notify wakes a shipper early after every routed write).
	DefaultShipInterval = 500 * time.Millisecond
	// DefaultHedgeFloor is the minimum hedge budget: a duplicate request
	// never fires earlier than this, so cold predicates and fast
	// backends do not hedge on noise.
	DefaultHedgeFloor = 5 * time.Millisecond
)

// Service-time priors used to score a replica before the router holds
// latency samples for it: the native vectorized engine answers about an
// order of magnitude faster than the cycle-accurate simulation, and
// partitioned scan workers shave the large scans further. Learned from
// each backend's STATS (engine.native, scan.workers) at pool-arm time.
const (
	simServicePrior    = time.Millisecond
	nativeServicePrior = 200 * time.Microsecond
	maxWorkerCredit    = 8
)

// Config parameterises a Router.
type Config struct {
	// Shards holds one replica-address list per shard group; Shards[i]
	// are the backends holding shard i's slice of the knowledge base.
	Shards [][]string
	// WireTimeout bounds each backend dial and wire operation
	// (0 means DefaultWireTimeout).
	WireTimeout time.Duration
	// CallTimeout is the per-request budget against one backend — the
	// failover ladder moves on when it expires (0 means
	// DefaultCallTimeout; negative disables the per-call override).
	CallTimeout time.Duration
	// TripThreshold is how many consecutive failures trip a backend out
	// of rotation (0 means DefaultTripThreshold).
	TripThreshold int
	// ProbePeriod is a tripped backend's cool-off before probationary
	// re-admission (0 means DefaultProbePeriod).
	ProbePeriod time.Duration
	// PoolSize bounds the idle connections kept per backend (0 means
	// DefaultPoolSize).
	PoolSize int
	// MaxLag is how many log records a replica may trail its primary
	// before it is marked stale and demoted in the retrieval candidate
	// order (0 means DefaultMaxLag).
	MaxLag uint64
	// ShipInterval is the idle log-shipping period per replica (0 means
	// DefaultShipInterval).
	ShipInterval time.Duration
	// Hedge arms request hedging on retrievals: when a group's best
	// replica has not answered within the predicate's P99 budget, the
	// runner-up gets a duplicate request and the first answer wins (the
	// loser is cancelled).
	Hedge bool
	// HedgeFloor is the minimum hedge budget (0 means DefaultHedgeFloor).
	// Only meaningful with Hedge.
	HedgeFloor time.Duration
	// LatencyWindow sizes the router's per-predicate and per-node
	// latency sample windows (0 means telemetry.DefaultLatencyWindow).
	LatencyWindow int
	// Faults, when non-nil, lets the shippers probe the wal.ship fault
	// site (keyed by replica address) — the chaos hook for replication.
	Faults *fault.Injector
	// Metrics, when non-nil, receives the router counters
	// (clare_cluster_*). Nil disables metrics.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, records one span tree per routed retrieval.
	Tracer *telemetry.Tracer
	// Flight, when non-nil, receives one compact record per routed
	// retrieval (predicate, routing decision, merged candidate funnel,
	// wall time, hedge flag) — the router's own black box, independent
	// of the per-backend recorders. Nil disables recording.
	Flight *telemetry.FlightRecorder
	// SLO, when non-nil, tracks the router's own burn rate over routed
	// retrievals (end-to-end wall time, as a client saw it). Nil
	// disables tracking.
	SLO *telemetry.SLOTracker
}

// errUnknownPredicate marks a backend's definitive "unknown predicate"
// reply: the node is healthy, the data just is not there. It triggers
// the fan-out fallback instead of the failover ladder.
var errUnknownPredicate = errors.New("cluster: predicate unknown on routed shard")

// isUnknownPredicate recognises the crs server's unknown-predicate ERR.
func isUnknownPredicate(se *crs.ServerError) bool {
	return strings.Contains(se.Msg, "unknown predicate")
}

// node is one CRS backend: an address, a small pool of idle protocol
// clients, and board-pool-style health bookkeeping at the node level —
// consecutive failures trip it out of rotation, a cool-off later it is
// re-admitted on probation (one further failure re-trips it, one clean
// call clears it). Mirrors internal/core's boardUnit, one level up.
type node struct {
	addr  string
	shard int

	mu       sync.Mutex
	idle     []*crs.Client
	failures int
	tripped  bool
	retryAt  time.Time

	// Replication watermarks, maintained by the node's shipper (zero
	// and never set on a primary or a single-node group).
	lag   atomic.Uint64
	stale atomic.Bool

	// Load-aware selection state: calls currently in flight against the
	// node, plus the capability its backend reported through STATS the
	// first time a connection was armed (probed latches the one-time
	// probe).
	outstanding atomic.Int64
	probed      atomic.Bool
	native      atomic.Bool
	workers     atomic.Int64
}

// group is one shard's replica set; nodes[0] is the primary (see
// repl.go), shippers stream its log to nodes[1:].
type group struct {
	shard    int
	nodes    []*node
	shippers []*wal.Shipper
}

// Router owns the shard map and the per-backend connection pools, and
// serves retrievals by scatter-gather: a goal's predicate indicator
// routes to exactly one shard group (rendezvous hashing), while
// unknown-predicate and mode=software queries fan out to every group.
// Within a group the router walks the replicas healthy-first and fails
// over on transport errors, timeouts, and server rejections; results
// merge in shard order, which preserves per-predicate clause order
// because a predicate lives whole on one shard.
//
// Router is safe for concurrent use; each in-flight request leases its
// own backend connection.
type Router struct {
	cfg    Config
	groups []*group
	met    *routerMetrics
	tracer *telemetry.Tracer
	lat    *telemetry.LatencyTracker

	// nodeLat windows per-backend service times (keyed by address) for
	// load-aware replica scoring; lat windows per-predicate wall times
	// for the hedge budget.
	nodeLat *telemetry.LatencyTracker

	// Service counters (also surfaced through STATS aggregation, so
	// they exist even without a metrics registry).
	requests  atomic.Int64
	fanouts   atomic.Int64
	failovers atomic.Int64
	trips     atomic.Int64
	readmits  atomic.Int64
	writes    atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64

	// replOnce guards StartReplication (see repl.go).
	replOnce sync.Once
}

// NewRouter validates the shard map and builds the router. No backend
// is dialed yet: connections are established lazily per request, so a
// router can boot before (or outlive) its backends.
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: no shards configured")
	}
	if cfg.WireTimeout <= 0 {
		cfg.WireTimeout = DefaultWireTimeout
	}
	if cfg.CallTimeout == 0 {
		cfg.CallTimeout = DefaultCallTimeout
	}
	if cfg.TripThreshold <= 0 {
		cfg.TripThreshold = DefaultTripThreshold
	}
	if cfg.ProbePeriod <= 0 {
		cfg.ProbePeriod = DefaultProbePeriod
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = DefaultPoolSize
	}
	if cfg.MaxLag == 0 {
		cfg.MaxLag = DefaultMaxLag
	}
	if cfg.ShipInterval <= 0 {
		cfg.ShipInterval = DefaultShipInterval
	}
	r := &Router{
		cfg:     cfg,
		met:     newRouterMetrics(cfg.Metrics, len(cfg.Shards)),
		tracer:  cfg.Tracer,
		lat:     telemetry.NewLatencyTracker(cfg.LatencyWindow),
		nodeLat: telemetry.NewLatencyTracker(cfg.LatencyWindow),
	}
	for i, replicas := range cfg.Shards {
		if len(replicas) == 0 {
			return nil, fmt.Errorf("cluster: shard %d has no replicas", i)
		}
		g := &group{shard: i}
		for _, addr := range replicas {
			if addr == "" {
				return nil, fmt.Errorf("cluster: shard %d has an empty replica address", i)
			}
			g.nodes = append(g.nodes, &node{addr: addr, shard: i})
		}
		r.groups = append(r.groups, g)
	}
	return r, nil
}

// Shards reports the shard-group count.
func (r *Router) Shards() int { return len(r.groups) }

// Latency exposes the per-predicate latency tracker (for the admin
// mux's /top endpoint).
func (r *Router) Latency() *telemetry.LatencyTracker { return r.lat }

// Replicas reports the total backend count across all groups.
func (r *Router) Replicas() int {
	n := 0
	for _, g := range r.groups {
		n += len(g.nodes)
	}
	return n
}

// Close stops the log shippers and drops every pooled backend
// connection.
func (r *Router) Close() {
	for _, g := range r.groups {
		for _, sh := range g.shippers {
			sh.Close()
		}
	}
	for _, g := range r.groups {
		for _, n := range g.nodes {
			n.mu.Lock()
			idle := n.idle
			n.idle = nil
			n.mu.Unlock()
			for _, c := range idle {
				c.Close()
			}
		}
	}
}

// get leases a protocol client for the node: an idle pooled connection
// when one exists, a fresh dial otherwise. Pooled clients have their
// own transparent retry disabled — failover policy belongs to the
// router, which wants to move to a replica, not hammer the same node.
// The first fresh dial ever armed also probes the backend's STATS for
// its service-time capability (engine.native, scan.workers); the probe
// is one-shot per node and best-effort.
func (n *node) get(cfg Config) (*crs.Client, bool, error) {
	n.mu.Lock()
	if k := len(n.idle); k > 0 {
		c := n.idle[k-1]
		n.idle = n.idle[:k-1]
		n.mu.Unlock()
		return c, true, nil
	}
	n.mu.Unlock()
	c, err := crs.DialTimeout(n.addr, cfg.WireTimeout)
	if err != nil {
		return nil, false, err
	}
	c.MaxRetries = -1
	if n.probed.CompareAndSwap(false, true) {
		if m, perr := c.StatsWithTimeout(cfg.WireTimeout); perr == nil {
			n.native.Store(m["engine.native"] == 1)
			if w := m["scan.workers"]; w > 0 {
				n.workers.Store(w)
			}
		} else {
			// The probe consumed the connection's health; hand the caller
			// a clean dial and let the real call decide the node's fate.
			c.Close()
			c, err = crs.DialTimeout(n.addr, cfg.WireTimeout)
			if err != nil {
				return nil, false, err
			}
			c.MaxRetries = -1
		}
	}
	return c, false, nil
}

// put returns a healthy client to the node's idle pool.
func (n *node) put(c *crs.Client, cfg Config) {
	n.mu.Lock()
	if len(n.idle) < cfg.PoolSize {
		n.idle = append(n.idle, c)
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	c.Close()
}

// discard closes a client whose connection failed and drops every other
// pooled connection to the node — they share its fate.
func (n *node) discard(c *crs.Client) {
	c.Close()
	n.mu.Lock()
	idle := n.idle
	n.idle = nil
	n.mu.Unlock()
	for _, ic := range idle {
		ic.Close()
	}
}

// strike records a failed call. Consecutive failures at the trip
// threshold take the node out of rotation until ProbePeriod elapses.
func (n *node) strike(r *Router) {
	n.mu.Lock()
	n.failures++
	if !n.tripped && n.failures >= r.cfg.TripThreshold {
		n.tripped = true
		n.retryAt = time.Now().Add(r.cfg.ProbePeriod)
		n.mu.Unlock()
		r.trips.Add(1)
		r.met.trips.Inc()
		r.met.tripped.Add(1)
		return
	}
	if n.tripped {
		// A failed probation call re-trips immediately.
		n.retryAt = time.Now().Add(r.cfg.ProbePeriod)
	}
	n.mu.Unlock()
}

// clear records a successful call, resetting the consecutive-failure
// count and completing a probationary re-admission.
func (n *node) clear(r *Router) {
	n.mu.Lock()
	n.failures = 0
	readmitted := n.tripped
	n.tripped = false
	n.mu.Unlock()
	if readmitted {
		r.readmits.Add(1)
		r.met.readmits.Inc()
		r.met.tripped.Add(-1)
	}
}

// serviceEstimate prices one request against the node: the router's
// observed per-node P90 when it holds samples, a capability-derived
// prior otherwise. r may be nil (tests); the prior then depends only on
// the probe state.
func (n *node) serviceEstimate(r *Router) time.Duration {
	if r != nil {
		if p90, ok := r.nodeLat.Quantile(n.addr, 0.90); ok && p90 > 0 {
			return p90
		}
	}
	est := simServicePrior
	if n.native.Load() {
		est = nativeServicePrior
		if w := n.workers.Load(); w > 1 {
			if w > maxWorkerCredit {
				w = maxWorkerCredit
			}
			est /= time.Duration(w)
		}
	}
	return est
}

// score is the node's expected queueing cost for one more request:
// service estimate scaled by the requests already in flight against it.
func (n *node) score(r *Router) int64 {
	return (n.outstanding.Load() + 1) * int64(n.serviceEstimate(r))
}

// candidates orders the group's replicas for one request: fresh healthy
// nodes first, then tripped nodes whose cool-off has elapsed
// (probation), then healthy-but-stale replicas — a replica whose
// replication lag exceeds the staleness bound serves bounded-staleness
// answers, so it ranks below a probationary node that might be fully
// caught up. Healthy nodes are ranked by expected queueing cost
// (outstanding load × observed-or-prior service time); the sort is
// stable, so unscored equals keep their declared order. When every node
// is tripped and still cooling, all are returned anyway — the router
// has no host-only rung below it, so a last-ditch attempt beats a
// guaranteed error.
func (g *group) candidates(r *Router) []*node {
	now := time.Now()
	healthy := make([]*node, 0, len(g.nodes))
	var probation, stale []*node
	for _, n := range g.nodes {
		n.mu.Lock()
		tripped, retryAt := n.tripped, n.retryAt
		n.mu.Unlock()
		switch {
		case !tripped && n.stale.Load():
			stale = append(stale, n)
		case !tripped:
			healthy = append(healthy, n)
		case now.After(retryAt) || now.Equal(retryAt):
			probation = append(probation, n)
		}
	}
	if len(healthy) > 1 {
		scores := make(map[*node]int64, len(healthy))
		for _, n := range healthy {
			scores[n] = n.score(r)
		}
		sort.SliceStable(healthy, func(i, j int) bool {
			return scores[healthy[i]] < scores[healthy[j]]
		})
	}
	out := append(append(healthy, probation...), stale...)
	if len(out) == 0 {
		return g.nodes
	}
	return out
}

// errHedgeAborted marks a hedged attempt cancelled because the other
// arm answered first. It never strikes node health — the node did
// nothing wrong, it just lost the race.
var errHedgeAborted = errors.New("cluster: hedged attempt cancelled")

// hedgeArm tracks one hedged attempt's in-flight client so the losing
// arm can be cancelled: closing the connection unblocks its pending
// read, the only cancellation the text protocol offers. A nil receiver
// means "not hedged" — set always succeeds, finish reports not-aborted.
type hedgeArm struct {
	mu      sync.Mutex
	c       *crs.Client
	aborted bool
}

// set registers the arm's active client; false when the arm was already
// cancelled (the caller must close the client and give up).
func (a *hedgeArm) set(c *crs.Client) bool {
	if a == nil {
		return true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.aborted {
		return false
	}
	a.c = c
	return true
}

// finish deregisters the client after its call returned; true when the
// arm was cancelled mid-call (the connection is then already closed and
// must not be pooled).
func (a *hedgeArm) finish() bool {
	if a == nil {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.c = nil
	return a.aborted
}

// abort cancels the arm: any registered in-flight connection is severed
// (failing its pending read) and any future set is refused. Abort, not
// Close — a QUIT handshake would wait out the very reply being
// abandoned, stalling the winning arm's return.
func (a *hedgeArm) abort() {
	a.mu.Lock()
	c := a.c
	a.c = nil
	a.aborted = true
	a.mu.Unlock()
	if c != nil {
		c.Sever() //nolint:errcheck // the connection is being abandoned
	}
}

// callNode runs one request against one backend, tracking the node's
// in-flight count and feeding its service-time window. A transport
// failure on a pooled (possibly stale) connection is retried once on a
// fresh dial before it counts against the node.
func callNode[T any](r *Router, n *node, op func(c *crs.Client) (T, error)) (T, error) {
	return callNodeArm(r, n, nil, op)
}

// callNodeArm is callNode registered against a hedge arm (nil for
// unhedged calls).
func callNodeArm[T any](r *Router, n *node, arm *hedgeArm, op func(c *crs.Client) (T, error)) (T, error) {
	n.outstanding.Add(1)
	defer n.outstanding.Add(-1)
	start := time.Now()
	res, err := callNodeConn(r, n, arm, op)
	var se *crs.ServerError
	if err == nil || errors.As(err, &se) {
		// The node answered, so this is a service-time sample; transport
		// failures and cancelled hedge arms are not.
		r.nodeLat.Observe(n.addr, time.Since(start))
	}
	return res, err
}

func callNodeConn[T any](r *Router, n *node, arm *hedgeArm, op func(c *crs.Client) (T, error)) (T, error) {
	var zero T
	attempt := func(c *crs.Client, pooled bool) (res T, err error, redial bool) {
		if !arm.set(c) {
			c.Sever() //nolint:errcheck // the arm already lost the race
			return zero, errHedgeAborted, false
		}
		res, err = op(c)
		if arm.finish() {
			// The other arm won mid-call: the connection was severed under
			// us and must not be pooled.
			c.Sever() //nolint:errcheck // already severed by the winner
			return zero, errHedgeAborted, false
		}
		if err == nil {
			n.put(c, r.cfg)
			return res, nil, false
		}
		var se *crs.ServerError
		if errors.As(err, &se) {
			// The server answered: the connection is still good.
			n.put(c, r.cfg)
			return zero, err, false
		}
		n.discard(c)
		// A pooled connection may simply have outlived the backend's
		// previous life; one fresh dial decides.
		return zero, err, pooled
	}
	c, pooled, err := n.get(r.cfg)
	if err != nil {
		return zero, err
	}
	res, err, redial := attempt(c, pooled)
	if redial {
		if c2, _, err2 := n.get(r.cfg); err2 == nil {
			res, err, _ = attempt(c2, false)
		}
	}
	return res, err
}

// callGroup walks the group's failover ladder: replicas in candidate
// order, failing over on timeouts, transport errors, and server
// rejections. An unknown-predicate reply is definitive (the healthy
// node just does not hold the data) and returns errUnknownPredicate
// without a failover. The last error is returned when every replica
// fails.
//
// When tr is non-nil, every attempt gets its own "net" child span under
// span — failed attempts keep their error attr, so a failover retry is
// visible in the stitched trace as one dead net span followed by a live
// one. op receives the attempt's net span so it can thread the trace
// context to the backend and graft the returned subtree under it.
func callGroup[T any](r *Router, g *group, tr *telemetry.Trace, span *telemetry.Span, op func(c *crs.Client, netSpan *telemetry.Span) (T, error)) (T, error) {
	return callLadder(r, g, g.candidates(r), 0, tr, span, op)
}

// callLadder is callGroup's loop over an explicit candidate list
// starting at index first (so the hedged path can resume the ladder
// past the two arms it already spent).
func callLadder[T any](r *Router, g *group, cands []*node, first int, tr *telemetry.Trace, span *telemetry.Span, op func(c *crs.Client, netSpan *telemetry.Span) (T, error)) (T, error) {
	var zero T
	var lastErr error
	for attempt := first; attempt < len(cands); attempt++ {
		n := cands[attempt]
		if attempt > 0 {
			r.failovers.Add(1)
			r.met.failovers[g.shard].Inc()
		}
		netSpan := tr.Span(span, "net")
		if netSpan != nil {
			netSpan.SetAttr("addr", n.addr)
			netSpan.SetAttr("attempt", fmt.Sprint(attempt))
		}
		res, err := callNode(r, n, func(c *crs.Client) (T, error) { return op(c, netSpan) })
		if err == nil {
			n.clear(r)
			netSpan.End()
			if span != nil {
				span.SetAttr("addr", n.addr)
				if attempt > 0 {
					span.SetAttr("failovers", fmt.Sprint(attempt))
				}
			}
			return res, nil
		}
		if netSpan != nil {
			netSpan.SetAttr("error", err.Error())
			netSpan.End()
		}
		var se *crs.ServerError
		if errors.As(err, &se) {
			if isUnknownPredicate(se) {
				n.clear(r)
				return zero, errUnknownPredicate
			}
			// A rejection (e.g. "server shutting down") fails over, but
			// only drain-style rejections say anything about node
			// health; a request the whole cluster would reject must not
			// trip every replica.
			if strings.Contains(se.Msg, "shutting down") {
				n.strike(r)
			}
			lastErr = err
			continue
		}
		n.strike(r)
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: shard %d has no reachable replica", g.shard)
	}
	return zero, lastErr
}

// hedgeBudget is one predicate's duplicate-request trigger: its
// observed P99 across routed calls, floored so cold predicates and
// sub-millisecond backends do not hedge on noise.
func (r *Router) hedgeBudget(pred string) time.Duration {
	floor := r.cfg.HedgeFloor
	if floor <= 0 {
		floor = DefaultHedgeFloor
	}
	if p99, ok := r.lat.Quantile(pred, 0.99); ok && p99 > floor {
		return p99
	}
	return floor
}

// callGroupHedged is callGroup with request hedging: the group's
// best-scored replica gets the request, and when it has not answered
// within the predicate's hedge budget the runner-up gets a duplicate —
// the first answer wins and the loser's connection is closed to cancel
// it. An arm failing before the budget fires the hedge immediately, and
// when both arms fail the remaining replicas run the ordinary failover
// ladder, so hedging never weakens failover. Falls through to the plain
// ladder when hedging is off or the group has fewer than two live
// candidates. hedgedOut, when non-nil, is set the moment a duplicate
// fires so the caller's flight record can carry the hedge flag.
func callGroupHedged[T any](r *Router, g *group, pred string, tr *telemetry.Trace, span *telemetry.Span, hedgedOut *atomic.Bool, op func(c *crs.Client, netSpan *telemetry.Span) (T, error)) (T, error) {
	cands := g.candidates(r)
	if !r.cfg.Hedge || len(cands) < 2 {
		return callLadder(r, g, cands, 0, tr, span, op)
	}
	var zero T
	type armResult struct {
		res T
		err error
		idx int
	}
	done := make(chan armResult, 2)
	arms := [2]*hedgeArm{new(hedgeArm), new(hedgeArm)}
	launch := func(idx int) {
		n := cands[idx]
		go func() {
			netSpan := tr.Span(span, "net")
			if netSpan != nil {
				netSpan.SetAttr("addr", n.addr)
				if idx == 1 {
					netSpan.SetAttr("hedge", "true")
				}
			}
			res, err := callNodeArm(r, n, arms[idx], func(c *crs.Client) (T, error) { return op(c, netSpan) })
			if netSpan != nil {
				if err != nil {
					netSpan.SetAttr("error", err.Error())
				}
				netSpan.End()
			}
			done <- armResult{res, err, idx}
		}()
	}
	launch(0)
	timer := time.NewTimer(r.hedgeBudget(pred))
	defer timer.Stop()
	hedged := false
	fire := func() bool {
		if hedged {
			return false
		}
		hedged = true
		if hedgedOut != nil {
			hedgedOut.Store(true)
		}
		r.hedges.Add(1)
		r.met.hedges.Inc()
		launch(1)
		return true
	}
	var lastErr error
	for pending := 1; pending > 0; {
		select {
		case <-timer.C:
			if fire() {
				pending++
			}
		case d := <-done:
			pending--
			if errors.Is(d.err, errHedgeAborted) {
				continue
			}
			n := cands[d.idx]
			if d.err == nil {
				n.clear(r)
				arms[1-d.idx].abort()
				if d.idx == 1 {
					r.hedgeWins.Add(1)
					r.met.hedgeWins.Inc()
				}
				if span != nil {
					span.SetAttr("addr", n.addr)
					if d.idx == 1 {
						span.SetAttr("hedge_won", "true")
					}
				}
				return d.res, nil
			}
			var se *crs.ServerError
			if errors.As(d.err, &se) {
				if isUnknownPredicate(se) {
					// Definitive: the healthy replica just does not hold
					// the predicate. No point racing the other arm.
					n.clear(r)
					arms[1-d.idx].abort()
					return zero, errUnknownPredicate
				}
				if strings.Contains(se.Msg, "shutting down") {
					n.strike(r)
				}
			} else {
				n.strike(r)
			}
			lastErr = d.err
			// The arm died before the budget expired: hedge immediately
			// rather than waiting out the timer.
			if fire() {
				pending++
			}
		}
	}
	// Both hedge arms failed; finish on the remaining replicas.
	if len(cands) > 2 {
		return callLadder(r, g, cands, 2, tr, span, op)
	}
	return zero, lastErr
}

// remoteCtx builds the trace context a backend call should carry: the
// router's trace joined at the attempt's net span. Nil (untraced call)
// keeps the wire request header-free — old-server compatible.
func remoteCtx(tr *telemetry.Trace, netSpan *telemetry.Span) *telemetry.TraceContext {
	if tr == nil || netSpan == nil {
		return nil
	}
	return &telemetry.TraceContext{TraceID: tr.TraceID, ParentSpan: netSpan.ID}
}

// Retrieve routes one retrieval. mode and goal are in wire form (mode
// word, Edinburgh goal without the final '.'). The predicate indicator
// routes the call to its shard group; mode=software and goals whose
// owning shard does not know the predicate fan out to every group, with
// per-group unknown-predicate replies merged as empty contributions.
func (r *Router) Retrieve(mode, goal string) (*crs.RetrieveResult, error) {
	return r.RetrieveTraced(mode, goal, nil)
}

// RetrieveTraced is Retrieve joining a remote caller's trace context.
// The router threads the context down to each backend attempt and grafts
// every returned span subtree under the attempt's net span, so the
// result's Spans field (populated only when tc is non-nil) holds one
// stitched cross-process tree: route → shard → net → backend pipeline.
func (r *Router) RetrieveTraced(mode, goal string, tc *telemetry.TraceContext) (*crs.RetrieveResult, error) {
	start := time.Now()
	r.requests.Add(1)
	tr := r.tracer.StartRemote("route", tc)
	root := tr.Root()
	finishErr := func(err error) error {
		if root != nil {
			root.SetAttr("error", err.Error())
			root.End()
			r.tracer.Finish(tr)
		}
		return err
	}
	finishOK := func(res *crs.RetrieveResult) *crs.RetrieveResult {
		r.met.latency.ObserveDuration(time.Since(start))
		if root != nil {
			root.SetAttr("candidates", fmt.Sprint(len(res.Clauses)))
			root.End()
		}
		if tc != nil {
			res.Spans = tr.Wire(0)
		}
		r.tracer.Finish(tr)
		return res
	}

	pi, err := GoalIndicator(goal)
	if err != nil {
		r.met.errors.Inc()
		return nil, finishErr(err)
	}
	if root != nil {
		root.SetAttr("predicate", pi)
		root.SetAttr("mode", mode)
	}
	defer func() { r.lat.Observe(pi, time.Since(start)) }()

	retrieveOp := func(c *crs.Client, netSpan *telemetry.Span) (*crs.RetrieveResult, error) {
		res, err := c.RetrieveTracedWithTimeout(mode, goal, remoteCtx(tr, netSpan), r.cfg.CallTimeout)
		if err == nil {
			tr.Graft(netSpan, res.Spans)
		}
		return res, err
	}

	var hedged atomic.Bool
	var res *crs.RetrieveResult
	if mode != "software" {
		shard := ShardOf(pi, len(r.groups))
		if root != nil {
			root.SetAttr("shard", fmt.Sprint(shard))
		}
		sp := tr.Span(root, "shard")
		if sp != nil {
			sp.SetAttr("shard", fmt.Sprint(shard))
		}
		res, err = callGroupHedged(r, r.groups[shard], pi, tr, sp, &hedged, retrieveOp)
		if sp != nil {
			if err != nil {
				sp.SetAttr("error", err.Error())
			} else {
				sp.SetAttr("candidates", fmt.Sprint(len(res.Clauses)))
			}
			sp.End()
		}
		if err == nil {
			r.met.requests[shard].Inc()
			r.observeRouted(pi, mode, fmt.Sprintf("shard=%d", shard), start, tr, &hedged, res, nil)
			return finishOK(res), nil
		}
		if !errors.Is(err, errUnknownPredicate) {
			r.met.errors.Inc()
			r.observeRouted(pi, mode, fmt.Sprintf("shard=%d", shard), start, tr, &hedged, nil, err)
			return nil, finishErr(err)
		}
		// The owning shard has never heard of the predicate (the KB may
		// not have been partitioned with our shard function, or the
		// clauses were asserted elsewhere): ask everyone.
	}

	res, err = r.fanout(mode, goal, pi, tr, root, &hedged, retrieveOp)
	if err != nil {
		r.met.errors.Inc()
		r.observeRouted(pi, mode, "fanout", start, tr, &hedged, nil, err)
		return nil, finishErr(err)
	}
	root.SetAttr("fanout", "true")
	r.observeRouted(pi, mode, "fanout", start, tr, &hedged, res, nil)
	return finishOK(res), nil
}

// observeRouted feeds the router's own observability surfaces after one
// routed retrieval: the SLO tracker (end-to-end wall time keyed by
// predicate) and the flight recorder, whose record carries the routing
// decision, the candidate funnel parsed back out of the merged STATS
// trailer, and the hedge flag. Both surfaces are nil-safe, so an
// unarmed router pays two nil checks here.
func (r *Router) observeRouted(pred, mode, plan string, start time.Time, tr *telemetry.Trace, hedged *atomic.Bool, res *crs.RetrieveResult, err error) {
	wall := time.Since(start)
	r.cfg.SLO.Observe(pred, wall, err != nil)
	f := r.cfg.Flight
	if f == nil {
		return
	}
	rec := &telemetry.FlightRecord{
		TS:        start.UnixNano(),
		Predicate: pred,
		Mode:      mode,
		Plan:      plan,
		WallNS:    int64(wall),
		Hedged:    hedged.Load(),
	}
	if tr != nil {
		rec.TraceID = tr.TraceID
	}
	if res != nil {
		rec.Total, rec.AfterFS1, rec.AfterFS2 = parseStatsLine(res.Stats)
	}
	if err != nil {
		// A failed route still lands in the black box: the funnel is
		// zero and the plan says which path died.
		rec.Plan = plan + " !err"
		rec.Faults = 1
	}
	f.Record(rec)
}

// fanout scatters the retrieval to every shard group concurrently and
// gathers the replies in shard order. A group that does not know the
// predicate contributes nothing; when no group knows it, the original
// unknown-predicate rejection is surfaced. Shard-order merging keeps
// per-predicate clause order intact: the partitioned build places each
// predicate whole on one shard, so its clauses arrive from a single
// group already in user order.
func (r *Router) fanout(mode, goal, pred string, tr *telemetry.Trace, root *telemetry.Span,
	hedged *atomic.Bool, op func(c *crs.Client, netSpan *telemetry.Span) (*crs.RetrieveResult, error)) (*crs.RetrieveResult, error) {
	r.fanouts.Add(1)
	r.met.fanouts.Inc()
	results := make([]*crs.RetrieveResult, len(r.groups))
	errs := make([]error, len(r.groups))
	var wg sync.WaitGroup
	for i, g := range r.groups {
		wg.Add(1)
		go func(i int, g *group) {
			defer wg.Done()
			// Span creation and grafting are goroutine-safe on a Trace, so
			// each worker opens (and owns) its shard span itself.
			sp := tr.Span(root, "shard")
			if sp != nil {
				sp.SetAttr("shard", fmt.Sprint(g.shard))
			}
			res, err := callGroupHedged(r, g, pred, tr, sp, hedged, op)
			if err == nil {
				r.met.requests[g.shard].Inc()
				results[i] = res
			} else {
				errs[i] = err
			}
			if sp != nil {
				if err != nil {
					sp.SetAttr("error", err.Error())
				} else {
					sp.SetAttr("candidates", fmt.Sprint(len(res.Clauses)))
				}
				sp.End()
			}
		}(i, g)
	}
	wg.Wait()

	merged := &crs.RetrieveResult{}
	var answered bool
	var firstErr error
	for i := range r.groups {
		switch {
		case results[i] != nil:
			answered = true
			merged.Clauses = append(merged.Clauses, results[i].Clauses...)
			merged.Stats = mergeStatsLines(merged.Stats, results[i].Stats, mode)
		case errors.Is(errs[i], errUnknownPredicate):
			// Healthy group, no data: an empty contribution.
		case firstErr == nil:
			firstErr = errs[i]
		}
	}
	if firstErr != nil {
		// Partial scatter results would silently drop clauses; a cluster
		// retrieval is all-or-nothing.
		return nil, firstErr
	}
	if !answered {
		return nil, &crs.ServerError{Msg: fmt.Sprintf("crs: unknown predicate %s", indicatorText(goal))}
	}
	return merged, nil
}

// Explain routes one EXPLAIN (filter-cost profile) call the way
// Retrieve routes a retrieval: home shard first, full fan-out when the
// owning shard does not know the predicate or mode is software.
func (r *Router) Explain(mode, goal string) (*crs.ExplainResult, error) {
	return r.ExplainTraced(mode, goal, nil)
}

// ExplainTraced is Explain joining a remote caller's trace context, the
// way RetrieveTraced joins one.
func (r *Router) ExplainTraced(mode, goal string, tc *telemetry.TraceContext) (*crs.ExplainResult, error) {
	start := time.Now()
	r.requests.Add(1)
	tr := r.tracer.StartRemote("route", tc)
	root := tr.Root()
	finishErr := func(err error) error {
		r.met.errors.Inc()
		if root != nil {
			root.SetAttr("error", err.Error())
			root.End()
			r.tracer.Finish(tr)
		}
		return err
	}
	finishOK := func(res *crs.ExplainResult) *crs.ExplainResult {
		r.met.latency.ObserveDuration(time.Since(start))
		root.End()
		if tc != nil {
			res.Spans = tr.Wire(0)
		}
		r.tracer.Finish(tr)
		return res
	}

	pi, err := GoalIndicator(goal)
	if err != nil {
		return nil, finishErr(err)
	}
	if root != nil {
		root.SetAttr("predicate", pi)
		root.SetAttr("mode", mode)
		root.SetAttr("explain", "true")
	}
	defer func() { r.lat.Observe(pi, time.Since(start)) }()

	explainOp := func(c *crs.Client, netSpan *telemetry.Span) (*crs.ExplainResult, error) {
		res, err := c.ExplainTracedWithTimeout(mode, goal, remoteCtx(tr, netSpan), r.cfg.CallTimeout)
		if err == nil {
			tr.Graft(netSpan, res.Spans)
		}
		return res, err
	}

	if mode != "software" {
		shard := ShardOf(pi, len(r.groups))
		sp := tr.Span(root, "shard")
		sp.SetAttr("shard", fmt.Sprint(shard))
		res, err := callGroup(r, r.groups[shard], tr, sp, explainOp)
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.End()
		if err == nil {
			r.met.requests[shard].Inc()
			return finishOK(res), nil
		}
		if !errors.Is(err, errUnknownPredicate) {
			return nil, finishErr(err)
		}
	}

	r.fanouts.Add(1)
	r.met.fanouts.Inc()
	results := make([]*crs.ExplainResult, len(r.groups))
	errs := make([]error, len(r.groups))
	var wg sync.WaitGroup
	for i, g := range r.groups {
		wg.Add(1)
		go func(i int, g *group) {
			defer wg.Done()
			sp := tr.Span(root, "shard")
			sp.SetAttr("shard", fmt.Sprint(g.shard))
			results[i], errs[i] = callGroup(r, g, tr, sp, explainOp)
			if errs[i] != nil {
				sp.SetAttr("error", errs[i].Error())
			}
			sp.End()
		}(i, g)
	}
	wg.Wait()

	var answered []*crs.ExplainResult
	var firstErr error
	for i := range r.groups {
		switch {
		case errs[i] == nil:
			answered = append(answered, results[i])
			r.met.requests[i].Inc()
		case errors.Is(errs[i], errUnknownPredicate):
			// Healthy group, no data: an empty contribution.
		case firstErr == nil:
			firstErr = errs[i]
		}
	}
	if firstErr != nil {
		return nil, finishErr(firstErr)
	}
	if len(answered) == 0 {
		return nil, finishErr(&crs.ServerError{
			Msg: fmt.Sprintf("crs: unknown predicate %s", indicatorText(goal))})
	}
	root.SetAttr("fanout", "true")
	return finishOK(mergeExplain(answered)), nil
}

// mergeExplain folds fanned-out per-shard profiles into one: integer
// values sum, durations take the max (scattered shards run concurrently,
// so the critical path is the cost), booleans OR, and anything else
// keeps the first shard's rendering. The ghost ratios are then
// recomputed from the merged candidate counts so they stay consistent
// with what they summarize.
func mergeExplain(results []*crs.ExplainResult) *crs.ExplainResult {
	if len(results) == 1 {
		return results[0]
	}
	var order []string
	vals := make(map[string]string)
	for _, res := range results {
		for _, e := range res.Entries {
			old, seen := vals[e.Key]
			if !seen {
				order = append(order, e.Key)
				vals[e.Key] = e.Value
				continue
			}
			vals[e.Key] = mergeExplainValue(old, e.Value)
		}
	}
	geti := func(k string) (int64, bool) {
		n, err := strconv.ParseInt(vals[k], 10, 64)
		return n, err == nil
	}
	if unified, ok := geti("candidates.unified"); ok {
		ratio := func(after int64) string {
			return strconv.FormatFloat(1-float64(unified)/float64(after), 'f', 4, 64)
		}
		if a1, ok := geti("candidates.after_fs1"); ok && a1 > 0 {
			vals["fs1.ghost_ratio"] = ratio(a1)
		}
		if a2, ok := geti("candidates.after_fs2"); ok && a2 > 0 {
			vals["fs2.ghost_ratio"] = ratio(a2)
		}
	}
	merged := &crs.ExplainResult{}
	for _, k := range order {
		merged.Entries = append(merged.Entries, core.ExplainEntry{Key: k, Value: vals[k]})
	}
	return merged
}

// mergeExplainValue merges one key's two renderings by dynamic type:
// ints sum, durations max, bools OR, strings keep-first.
func mergeExplainValue(a, b string) string {
	if x, err := strconv.ParseInt(a, 10, 64); err == nil {
		if y, err := strconv.ParseInt(b, 10, 64); err == nil {
			return strconv.FormatInt(x+y, 10)
		}
	}
	if x, err := time.ParseDuration(a); err == nil {
		if y, err := time.ParseDuration(b); err == nil {
			if y > x {
				return b
			}
			return a
		}
	}
	if x, err := strconv.ParseBool(a); err == nil {
		if y, err := strconv.ParseBool(b); err == nil {
			return strconv.FormatBool(x || y)
		}
	}
	return a
}

// indicatorText best-effort renders the goal's indicator for the
// unknown-predicate rejection (matching the single-node ERR shape).
func indicatorText(goal string) string {
	pi, err := GoalIndicator(goal)
	if err != nil {
		return goal
	}
	return pi
}

// mergeStatsLines folds one backend's "STATS mode=… total=… fs1=… fs2=…"
// trailer into the running merged trailer by summing the stage counts.
func mergeStatsLines(acc, next, mode string) string {
	if acc == "" {
		return next
	}
	at, a1, a2 := parseStatsLine(acc)
	bt, b1, b2 := parseStatsLine(next)
	return fmt.Sprintf("STATS mode=%s total=%d fs1=%d fs2=%d", mode, at+bt, a1+b1, a2+b2)
}

// parseStatsLine extracts total/fs1/fs2 from a retrieval STATS trailer;
// unparsable fields read as zero (the merge stays best-effort).
func parseStatsLine(line string) (total, fs1, fs2 int64) {
	for _, f := range strings.Fields(line) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			continue
		}
		var n int64
		if _, err := fmt.Sscanf(v, "%d", &n); err != nil {
			continue
		}
		switch k {
		case "total":
			total = n
		case "fs1":
			fs1 = n
		case "fs2":
			fs2 = n
		}
	}
	return total, fs1, fs2
}

// Stats gathers every shard group's service counters (one reachable
// replica per group, failover ladder applied) and sums them per key,
// then overlays the router's own cluster.* counters. Numeric summing
// makes served.*, faults, retries etc. cluster-wide aggregates; gauges
// like boards.free become chassis totals across the cluster.
func (r *Router) Stats() (map[string]int64, error) {
	out := make(map[string]int64)
	groupStats := make([]map[string]int64, 0, len(r.groups))
	for _, g := range r.groups {
		m, err := callGroup[map[string]int64](r, g, nil, nil, func(c *crs.Client, _ *telemetry.Span) (map[string]int64, error) {
			return c.StatsWithTimeout(r.cfg.CallTimeout)
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d stats: %w", g.shard, err)
		}
		groupStats = append(groupStats, m)
		for k, v := range m {
			out[k] += v
		}
	}
	var tripped, staleN, shipped, lagMax int64
	for _, g := range r.groups {
		for _, n := range g.nodes {
			n.mu.Lock()
			if n.tripped {
				tripped++
			}
			n.mu.Unlock()
			if n.stale.Load() {
				staleN++
			}
			if l := int64(n.lag.Load()); l > lagMax {
				lagMax = l
			}
		}
		for _, sh := range g.shippers {
			shipped += sh.Shipped()
		}
	}
	out["cluster.shards"] = int64(len(r.groups))
	out["cluster.replicas"] = int64(r.Replicas())
	out["cluster.requests"] = r.requests.Load()
	out["cluster.fanouts"] = r.fanouts.Load()
	out["cluster.failovers"] = r.failovers.Load()
	out["cluster.nodes.tripped"] = tripped
	out["cluster.trips"] = r.trips.Load()
	out["cluster.readmits"] = r.readmits.Load()
	out["cluster.writes"] = r.writes.Load()
	hedgeEnabled := int64(0)
	if r.cfg.Hedge {
		hedgeEnabled = 1
	}
	out["cluster.hedge.enabled"] = hedgeEnabled
	out["cluster.hedges"] = r.hedges.Load()
	out["cluster.hedge.wins"] = r.hedgeWins.Load()
	out["cluster.latency.window"] = int64(r.lat.Window())
	out["cluster.wal.shipped"] = shipped
	out["cluster.wal.lag.max"] = lagMax
	out["cluster.wal.stale"] = staleN
	r.overlaySLO(out, groupStats)
	if f := r.cfg.Flight; f != nil {
		out["cluster.flight.recorded"] = int64(f.Recorded())
	}
	return out, nil
}

// overlaySLO repairs the slo.* keys that plain per-key summing mangles
// and overlays the cluster-wide burn rate. Objective and flag keys
// (slo.enabled, slo.p99.us, slo.err.permille, slo.breach.active) become
// per-group maxima — an objective is a target, not a quantity — while
// the burn rates are recomputed from the summed window counts against
// that objective, so the cluster-wide burn weights every backend by its
// own traffic instead of averaging milli-burns across idle and loaded
// shards alike. No-op when no backend reports an armed SLO.
func (r *Router) overlaySLO(out map[string]int64, groupStats []map[string]int64) {
	enabled := false
	for _, k := range []string{"slo.enabled", "slo.p99.us", "slo.err.permille", "slo.breach.active"} {
		var best int64
		seen := false
		for _, m := range groupStats {
			if v, ok := m[k]; ok {
				seen = true
				if v > best {
					best = v
				}
			}
		}
		if seen {
			out[k] = best
			if k == "slo.enabled" && best > 0 {
				enabled = true
			}
		}
	}
	if !enabled {
		return
	}
	slo := telemetry.SLO{
		P99:     time.Duration(out["slo.p99.us"]) * time.Microsecond,
		ErrRate: float64(out["slo.err.permille"]) / 1000,
	}
	short := telemetry.BurnRate(slo,
		out["slo.window.short.requests"], out["slo.window.short.slow"], out["slo.window.short.errors"])
	long := telemetry.BurnRate(slo,
		out["slo.window.long.requests"], out["slo.window.long.slow"], out["slo.window.long.errors"])
	out["slo.burn.short.milli"] = int64(short * 1000)
	out["slo.burn.long.milli"] = int64(long * 1000)
	out["cluster.slo.burn.short.milli"] = out["slo.burn.short.milli"]
	out["cluster.slo.burn.long.milli"] = out["slo.burn.long.milli"]
}

// Flight exposes the router's own flight recorder (nil when unarmed).
func (r *Router) Flight() *telemetry.FlightRecorder { return r.cfg.Flight }

// SLOTracker exposes the router's own SLO tracker (nil when unarmed).
func (r *Router) SLOTracker() *telemetry.SLOTracker { return r.cfg.SLO }

// SlowTail gathers the newest slow-query captures across every shard
// group (one reachable replica per group, failover ladder applied),
// merges them by capture time and returns the last n (n <= 0 means
// everything the backends hold).
func (r *Router) SlowTail(n int) ([]telemetry.SlowCapture, error) {
	var all []telemetry.SlowCapture
	for _, g := range r.groups {
		caps, err := callGroup(r, g, nil, nil, func(c *crs.Client, _ *telemetry.Span) ([]telemetry.SlowCapture, error) {
			return c.SlowTail(n)
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d slowlog: %w", g.shard, err)
		}
		all = append(all, caps...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].TS < all[j].TS })
	if n > 0 && len(all) > n {
		all = all[len(all)-n:]
	}
	return all, nil
}

// Failovers reports the total replica failovers performed so far.
func (r *Router) Failovers() int64 { return r.failovers.Load() }
