package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"clare/internal/core"
	"clare/internal/crs"
	"clare/internal/telemetry"
	"clare/internal/term"
)

// testPred is one predicate's worth of facts for a test cluster.
type testPred struct {
	name    string
	clauses []core.ClauseTerm
}

// facts builds n arity-2 ground facts name(e<i>, v<i>).
func facts(name string, n int) testPred {
	out := make([]core.ClauseTerm, n)
	for i := 0; i < n; i++ {
		out[i] = core.ClauseTerm{Head: term.New(name,
			term.Atom(fmt.Sprintf("e%d", i)), term.Atom(fmt.Sprintf("v%d", i)))}
	}
	return testPred{name: name, clauses: out}
}

// indicator is the pred's routing key (all test facts are arity 2).
func (p testPred) indicator() string { return p.name + "/2" }

// startBackend boots one crs.Server on loopback holding preds.
func startBackend(t *testing.T, preds []testPred) (*crs.Server, net.Listener) {
	t.Helper()
	r, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := crs.NewServer(r)
	for _, p := range preds {
		if err := s.Load("test", p.clauses); err != nil {
			t.Fatal(err)
		}
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { l.Close() })
	return s, l
}

// testCluster is a partitioned set of in-process backends.
type testCluster struct {
	preds []testPred
	srvs  [][]*crs.Server
	lis   [][]net.Listener
	addrs [][]string
}

// startCluster partitions preds with ShardOf (exactly as kbc -shards
// does) and boots `replicas` identical backends per shard group.
func startCluster(t *testing.T, shards, replicas int, preds []testPred) *testCluster {
	t.Helper()
	tc := &testCluster{preds: preds}
	for i := 0; i < shards; i++ {
		var part []testPred
		for _, p := range preds {
			if ShardOf(p.indicator(), shards) == i {
				part = append(part, p)
			}
		}
		var srvs []*crs.Server
		var lis []net.Listener
		var addrs []string
		for j := 0; j < replicas; j++ {
			s, l := startBackend(t, part)
			srvs, lis, addrs = append(srvs, s), append(lis, l), append(addrs, l.Addr().String())
		}
		tc.srvs = append(tc.srvs, srvs)
		tc.lis = append(tc.lis, lis)
		tc.addrs = append(tc.addrs, addrs)
	}
	return tc
}

// kill takes one backend down hard: stop accepting and force-close every
// open connection, leaving pooled router clients pointing at a corpse.
func (tc *testCluster) kill(t *testing.T, shard, replica int) {
	t.Helper()
	tc.lis[shard][replica].Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	tc.srvs[shard][replica].Shutdown(ctx) //nolint:errcheck // deadline abort is the point
}

// predOnShard finds a predicate the shard function places on shard s.
func predOnShard(t *testing.T, preds []testPred, shards, s int) testPred {
	t.Helper()
	for _, p := range preds {
		if ShardOf(p.indicator(), shards) == s {
			return p
		}
	}
	t.Fatalf("no test predicate maps to shard %d of %d", s, shards)
	return testPred{}
}

func testPreds() []testPred {
	out := make([]testPred, 8)
	for i := range out {
		out[i] = facts(fmt.Sprintf("route%d", i), 4+i)
	}
	return out
}

func newTestRouter(t *testing.T, addrs [][]string, mut func(*Config)) *Router {
	t.Helper()
	cfg := Config{
		Shards:      addrs,
		WireTimeout: 2 * time.Second,
		CallTimeout: 2 * time.Second,
	}
	if mut != nil {
		mut(&cfg)
	}
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

// TestRoutedMatchesDirect: every predicate retrieved through the router
// returns exactly what its owning backend returns directly.
func TestRoutedMatchesDirect(t *testing.T) {
	preds := testPreds()
	tc := startCluster(t, 3, 1, preds)
	r := newTestRouter(t, tc.addrs, nil)
	for _, p := range preds {
		goal := p.name + "(X, Y)"
		got, err := r.Retrieve("auto", goal)
		if err != nil {
			t.Fatalf("routed retrieve %q: %v", goal, err)
		}
		shard := ShardOf(p.indicator(), 3)
		c, err := crs.Dial(tc.addrs[shard][0])
		if err != nil {
			t.Fatal(err)
		}
		want, err := c.Retrieve("auto", goal)
		c.Close()
		if err != nil {
			t.Fatalf("direct retrieve %q: %v", goal, err)
		}
		if len(got.Clauses) != len(p.clauses) {
			t.Errorf("%q: routed %d clauses, want %d", goal, len(got.Clauses), len(p.clauses))
		}
		if fmt.Sprint(got.Clauses) != fmt.Sprint(want.Clauses) {
			t.Errorf("%q: routed clauses diverge from direct:\n  got  %v\n  want %v",
				goal, got.Clauses, want.Clauses)
		}
	}
	if n := r.requests.Load(); n != int64(len(preds)) {
		t.Errorf("requests = %d, want %d", n, len(preds))
	}
	if n := r.fanouts.Load(); n != 0 {
		t.Errorf("fanouts = %d, want 0 (every predicate routed to its home shard)", n)
	}
}

// TestSoftwareModeFanout: mode=software scatters to every group; a
// predicate still comes back whole (it lives on one shard) and the STATS
// trailer is the merged sum.
func TestSoftwareModeFanout(t *testing.T) {
	preds := testPreds()
	tc := startCluster(t, 3, 1, preds)
	r := newTestRouter(t, tc.addrs, nil)
	p := preds[0]
	res, err := r.Retrieve("software", p.name+"(X, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clauses) != len(p.clauses) {
		t.Errorf("fanout returned %d clauses, want %d", len(res.Clauses), len(p.clauses))
	}
	if !strings.HasPrefix(res.Stats, "STATS mode=software") {
		t.Errorf("merged stats trailer = %q", res.Stats)
	}
	if n := r.fanouts.Load(); n != 1 {
		t.Errorf("fanouts = %d, want 1", n)
	}
}

// TestUnknownPredicateFanoutFallback: when the owning shard has never
// heard of a predicate, the router falls back to a full fan-out — data
// loaded off its home shard stays reachable.
func TestUnknownPredicateFanoutFallback(t *testing.T) {
	stray := facts("strayaway", 5)
	home := ShardOf(stray.indicator(), 2)
	off := 1 - home
	// Build two backends by hand: the stray predicate lives only on the
	// non-home shard.
	var addrs [][]string
	for i := 0; i < 2; i++ {
		var part []testPred
		if i == off {
			part = []testPred{stray}
		}
		_, l := startBackend(t, part)
		addrs = append(addrs, []string{l.Addr().String()})
	}
	r := newTestRouter(t, addrs, nil)
	res, err := r.Retrieve("auto", "strayaway(X, Y)")
	if err != nil {
		t.Fatalf("fallback retrieve: %v", err)
	}
	if len(res.Clauses) != len(stray.clauses) {
		t.Errorf("fallback returned %d clauses, want %d", len(res.Clauses), len(stray.clauses))
	}
	if n := r.fanouts.Load(); n != 1 {
		t.Errorf("fanouts = %d, want 1", n)
	}
}

// TestUnknownEverywhere: a predicate no shard holds surfaces the
// single-node unknown-predicate rejection shape.
func TestUnknownEverywhere(t *testing.T) {
	tc := startCluster(t, 2, 1, testPreds())
	r := newTestRouter(t, tc.addrs, nil)
	_, err := r.Retrieve("auto", "never_loaded(X, Y)")
	var se *crs.ServerError
	if !errors.As(err, &se) || !strings.Contains(se.Msg, "unknown predicate never_loaded/2") {
		t.Errorf("retrieve of missing predicate = %v, want unknown-predicate ServerError", err)
	}
}

// TestFailoverToReplica: with one replica dead — pooled connections and
// all — retrievals keep succeeding through the survivor and the failover
// counter records it.
func TestFailoverToReplica(t *testing.T) {
	preds := testPreds()
	tc := startCluster(t, 2, 2, preds)
	reg := telemetry.NewRegistry()
	r := newTestRouter(t, tc.addrs, func(cfg *Config) { cfg.Metrics = reg })
	p := predOnShard(t, preds, 2, 0)
	goal := p.name + "(X, Y)"

	// Warm the pool through replica 0, then kill it. Pin it at the head
	// of the candidate order first: its warm-request latency sample can
	// exceed the idle replica's prior (routine under -race), and the
	// load-aware ranking would then sidestep the dead node instead of
	// failing over from it.
	if _, err := r.Retrieve("auto", goal); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		r.nodeLat.Observe(tc.addrs[0][0], 100*time.Microsecond)
	}
	tc.kill(t, 0, 0)

	res, err := r.Retrieve("auto", goal)
	if err != nil {
		t.Fatalf("retrieve after replica death: %v", err)
	}
	if len(res.Clauses) != len(p.clauses) {
		t.Errorf("failover returned %d clauses, want %d", len(res.Clauses), len(p.clauses))
	}
	if r.Failovers() == 0 {
		t.Error("failover counter did not move")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `clare_cluster_failovers_total{shard="0"} 1`) {
		t.Errorf("exposition missing shard-0 failover:\n%s", sb.String())
	}
}

// TestTripAndReadmit: a dead sole replica trips out of rotation after
// TripThreshold consecutive failures; once it is back, the last-ditch
// path reaches it and a clean call re-admits it.
func TestTripAndReadmit(t *testing.T) {
	preds := testPreds()
	tc := startCluster(t, 1, 1, preds)
	addr := tc.addrs[0][0]
	r := newTestRouter(t, tc.addrs, func(cfg *Config) {
		cfg.TripThreshold = 2
		cfg.ProbePeriod = time.Hour // cooling must not expire during the test
	})
	goal := preds[0].name + "(X, Y)"
	tc.kill(t, 0, 0)

	for i := 0; i < 2; i++ {
		if _, err := r.Retrieve("auto", goal); err == nil {
			t.Fatal("retrieve against a dead cluster should fail")
		}
	}
	if n := r.trips.Load(); n != 1 {
		t.Fatalf("trips = %d, want 1", n)
	}

	// Resurrect the backend on the same address; the node is tripped and
	// cooling, so only the last-ditch rung can reach it.
	reborn, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := crs.NewServer(reborn)
	for _, p := range preds {
		if err := s.Load("test", p.clauses); err != nil {
			t.Fatal(err)
		}
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go s.Serve(l)

	res, err := r.Retrieve("auto", goal)
	if err != nil {
		t.Fatalf("retrieve after resurrection: %v", err)
	}
	if len(res.Clauses) != len(preds[0].clauses) {
		t.Errorf("got %d clauses, want %d", len(res.Clauses), len(preds[0].clauses))
	}
	if n := r.readmits.Load(); n != 1 {
		t.Errorf("readmits = %d, want 1", n)
	}
}

// TestCandidatesOrder: healthy replicas come first in declared order,
// cooled-off tripped replicas follow on probation, and a fully tripped,
// still-cooling group falls back to everyone.
func TestCandidatesOrder(t *testing.T) {
	mk := func() *group {
		return &group{nodes: []*node{
			{addr: "a"}, {addr: "b"}, {addr: "c"},
		}}
	}
	order := func(g *group) string {
		var names []string
		for _, n := range g.candidates(nil) {
			names = append(names, n.addr)
		}
		return strings.Join(names, "")
	}

	g := mk()
	if got := order(g); got != "abc" {
		t.Errorf("all healthy: %q, want abc", got)
	}

	g = mk()
	g.nodes[0].tripped = true
	g.nodes[0].retryAt = time.Now().Add(time.Hour)
	if got := order(g); got != "bc" {
		t.Errorf("a tripped+cooling: %q, want bc", got)
	}

	g = mk()
	g.nodes[0].tripped = true
	g.nodes[0].retryAt = time.Now().Add(-time.Second)
	if got := order(g); got != "bca" {
		t.Errorf("a on probation: %q, want bca", got)
	}

	g = mk()
	for _, n := range g.nodes {
		n.tripped = true
		n.retryAt = time.Now().Add(time.Hour)
	}
	if got := order(g); got != "abc" {
		t.Errorf("all cooling (last ditch): %q, want abc", got)
	}
}

// TestStatsAggregation: Stats sums backend counters across groups and
// overlays the router's own cluster.* keys.
func TestStatsAggregation(t *testing.T) {
	preds := testPreds()
	tc := startCluster(t, 2, 2, preds)
	r := newTestRouter(t, tc.addrs, nil)
	// Pin each group's replica 0 at the head of the candidate order:
	// served.* counters arrive from exactly one replica per group, so
	// the requests and the stats poll must land on the same node even
	// when -race skews the observed service times.
	for i := 0; i < 64; i++ {
		r.nodeLat.Observe(tc.addrs[0][0], 100*time.Microsecond)
		r.nodeLat.Observe(tc.addrs[1][0], 100*time.Microsecond)
	}
	for _, p := range preds[:3] {
		if _, err := r.Retrieve("auto", p.name+"(X, Y)"); err != nil {
			t.Fatal(err)
		}
	}
	kv, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if kv["cluster.shards"] != 2 || kv["cluster.replicas"] != 4 {
		t.Errorf("topology keys wrong: shards=%d replicas=%d", kv["cluster.shards"], kv["cluster.replicas"])
	}
	if kv["cluster.requests"] != 3 {
		t.Errorf("cluster.requests = %d, want 3", kv["cluster.requests"])
	}
	// Backend-origin keys must be present and summed: the three auto
	// retrievals are spread across the two groups, and each group's
	// served.* counters arrive from exactly one replica.
	served := int64(0)
	for k, v := range kv {
		if strings.HasPrefix(k, "served.") {
			served += v
		}
	}
	if served != 3 {
		t.Errorf("summed served.* = %d, want 3 (stats %v)", served, kv)
	}
	// The scan/store keys propagate and sum across the cluster: each of
	// the 2 reachable backends reports scan.workers >= 1, and these
	// in-memory backends report store.mapped = 0.
	if kv["scan.workers"] < 2 {
		t.Errorf("scan.workers = %d, want >= 2 (one per reporting backend)", kv["scan.workers"])
	}
	if mapped, ok := kv["store.mapped"]; !ok || mapped != 0 {
		t.Errorf("store.mapped = %d (present %v), want 0 for heap-backed shards", mapped, ok)
	}
}

// TestRetrieveTrace: a routed retrieval leaves a span tree with the
// predicate on the root and the shard on the child.
func TestRetrieveTrace(t *testing.T) {
	preds := testPreds()
	tc := startCluster(t, 2, 1, preds)
	tracer := telemetry.NewTracer(4)
	r := newTestRouter(t, tc.addrs, func(cfg *Config) { cfg.Tracer = tracer })
	p := preds[0]
	if _, err := r.Retrieve("auto", p.name+"(X, Y)"); err != nil {
		t.Fatal(err)
	}
	if len(tracer.Last(1)) == 0 {
		t.Fatal("no trace recorded")
	}
	var sb strings.Builder
	if err := tracer.WriteJSON(&sb, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"route"`, `"shard"`, p.indicator()} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}
