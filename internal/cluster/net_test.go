package cluster

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"clare/internal/crs"
)

// startFront boots the cluster wire front-end over a fresh router.
func startFront(t *testing.T, addrs [][]string) (*Server, string) {
	t.Helper()
	r := newTestRouter(t, addrs, nil)
	s := NewServer(r)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { l.Close() })
	return s, l.Addr().String()
}

// TestWireTransparent: the stock crs.Client speaks to the cluster
// front-end without knowing it is one — the protocol is unchanged.
func TestWireTransparent(t *testing.T) {
	preds := testPreds()
	tc := startCluster(t, 2, 1, preds)
	_, addr := startFront(t, tc.addrs)
	c, err := crs.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, p := range preds[:3] {
		res, err := c.Retrieve("auto", p.name+"(X, Y)")
		if err != nil {
			t.Fatalf("retrieve %s through front-end: %v", p.name, err)
		}
		if len(res.Clauses) != len(p.clauses) {
			t.Errorf("%s: %d clauses, want %d", p.name, len(res.Clauses), len(p.clauses))
		}
	}
	kv, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if kv["cluster.shards"] != 2 {
		t.Errorf("cluster.shards = %d, want 2", kv["cluster.shards"])
	}
	if kv["cluster.requests"] != 3 {
		t.Errorf("cluster.requests = %d, want 3", kv["cluster.requests"])
	}
}

// TestWireStatsSorted: the front-end renders STATS keys in sorted order
// so crsctl output is deterministic cluster-wide.
func TestWireStatsSorted(t *testing.T) {
	tc := startCluster(t, 2, 1, testPreds())
	_, addr := startFront(t, tc.addrs)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	in := bufio.NewScanner(conn)
	fmt.Fprintln(conn, "STATS")
	if !in.Scan() {
		t.Fatalf("no STATS header: %v", in.Err())
	}
	var n int
	if _, err := fmt.Sscanf(in.Text(), "STATS %d", &n); err != nil {
		t.Fatalf("bad STATS header %q: %v", in.Text(), err)
	}
	var keys []string
	for i := 0; i < n; i++ {
		if !in.Scan() {
			t.Fatalf("stats truncated after %d of %d lines", i, n)
		}
		parts := strings.Fields(in.Text())
		if len(parts) != 3 || parts[0] != "S" {
			t.Fatalf("bad stats line %q", in.Text())
		}
		keys = append(keys, parts[1])
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			t.Fatalf("stats keys not sorted: %q after %q", keys[i], keys[i-1])
		}
	}
	found := false
	for _, k := range keys {
		if k == "cluster.failovers" {
			found = true
		}
	}
	if !found {
		t.Errorf("stats missing cluster.failovers (keys %v)", keys)
	}
}

// TestWireTransactionSameShard: a transaction whose asserts all land on
// one shard passes through and its commit is visible to retrieval.
func TestWireTransactionSameShard(t *testing.T) {
	preds := testPreds()
	tc := startCluster(t, 2, 1, preds)
	_, addr := startFront(t, tc.addrs)
	c, err := crs.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p := predOnShard(t, preds, 2, 0)
	before, err := c.Retrieve("auto", p.name+"(X, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Assert(p.name + "(extra, extra)"); err != nil {
		t.Fatalf("assert: %v", err)
	}
	if err := c.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	after, err := c.Retrieve("auto", p.name+"(X, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Clauses) != len(before.Clauses)+1 {
		t.Errorf("clauses after commit = %d, want %d", len(after.Clauses), len(before.Clauses)+1)
	}
}

// TestWireTransactionCrossShardRejected: the second ASSERT naming a
// predicate on a different shard is refused — there is no distributed
// commit.
func TestWireTransactionCrossShardRejected(t *testing.T) {
	preds := testPreds()
	tc := startCluster(t, 2, 1, preds)
	_, addr := startFront(t, tc.addrs)
	c, err := crs.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p0 := predOnShard(t, preds, 2, 0)
	p1 := predOnShard(t, preds, 2, 1)
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Assert(p0.name + "(a, b)"); err != nil {
		t.Fatalf("first assert: %v", err)
	}
	err = c.Assert(p1.name + "(a, b)")
	var se *crs.ServerError
	if !errors.As(err, &se) || !strings.Contains(se.Msg, "cross-shard") {
		t.Fatalf("cross-shard assert = %v, want cross-shard rejection", err)
	}
	// The transaction survives the rejection and can still abort cleanly.
	if err := c.Abort(); err != nil {
		t.Errorf("abort after rejection: %v", err)
	}
}

// TestWireEmptyTransaction: BEGIN/COMMIT with no asserts is a no-op OK.
func TestWireEmptyTransaction(t *testing.T) {
	tc := startCluster(t, 2, 1, testPreds())
	_, addr := startFront(t, tc.addrs)
	c, err := crs.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Errorf("empty commit: %v", err)
	}
}

// TestFrontendShutdown: Shutdown drains — new dials are refused while
// an idle connected client keeps the drain waiting until it leaves.
func TestFrontendShutdown(t *testing.T) {
	tc := startCluster(t, 2, 1, testPreds())
	s, addr := startFront(t, tc.addrs)
	c, err := crs.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Retrieve("auto", testPreds()[0].name+"(X, Y)"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	select {
	case <-done:
		t.Fatal("Shutdown returned with a connection open")
	case <-time.After(50 * time.Millisecond):
	}
	c.Close()
	if err := <-done; err != nil {
		t.Errorf("graceful Shutdown = %v", err)
	}
}
