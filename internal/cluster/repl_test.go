package cluster

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"clare/internal/core"
	"clare/internal/crs"
	"clare/internal/wal"
)

// startWALBackend boots one crs.Server with a write-ahead log recovered
// from dir. readOnly marks it a replica (writes only via REPL).
func startWALBackend(t *testing.T, preds []testPred, dir string, readOnly bool, addr string) (*crs.Server, net.Listener) {
	t.Helper()
	r, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := crs.NewServer(r)
	for _, p := range preds {
		if err := s.Load("test", p.clauses); err != nil {
			t.Fatal(err)
		}
	}
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.AttachWAL(l)
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	s.SetReadOnly(readOnly)
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(lis)
	t.Cleanup(func() { lis.Close(); l.Close() })
	return s, lis
}

// replSet is one shard group with a durable primary and read-only
// replicas, each recovering from its own WAL directory.
type replSet struct {
	preds []testPred
	dirs  []string
	srvs  []*crs.Server
	lis   []net.Listener
	addrs []string
}

func startReplSet(t *testing.T, replicas int, preds []testPred) *replSet {
	t.Helper()
	rs := &replSet{preds: preds}
	base := t.TempDir()
	for i := 0; i < 1+replicas; i++ {
		dir := filepath.Join(base, fmt.Sprintf("node%d", i))
		s, l := startWALBackend(t, preds, dir, i > 0, "")
		rs.dirs = append(rs.dirs, dir)
		rs.srvs = append(rs.srvs, s)
		rs.lis = append(rs.lis, l)
		rs.addrs = append(rs.addrs, l.Addr().String())
	}
	return rs
}

// kill takes node i down hard, keeping its address and WAL dir for a
// later restart.
func (rs *replSet) kill(t *testing.T, i int) {
	t.Helper()
	rs.lis[i].Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	rs.srvs[i].Shutdown(ctx) //nolint:errcheck // deadline abort is the point
}

// restart brings node i back on its old address, recovering from its
// own WAL directory — the crash-recovery half of the drill.
func (rs *replSet) restart(t *testing.T, i int) {
	t.Helper()
	s, l := startWALBackend(t, rs.preds, rs.dirs[i], i > 0, rs.addrs[i])
	rs.srvs[i], rs.lis[i] = s, l
}

// retrieveDirect asks one backend directly (fresh connection).
func retrieveDirect(t *testing.T, addr, goal string) []string {
	t.Helper()
	c, err := crs.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Retrieve("auto", goal)
	if err != nil {
		t.Fatalf("direct retrieve %q on %s: %v", goal, addr, err)
	}
	return res.Clauses
}

// TestRoutedWriteReplicates: autocommit writes routed through the
// cluster land on the shard primary, ship to every replica, and leave
// identical candidate sets on all three nodes.
func TestRoutedWriteReplicates(t *testing.T) {
	preds := []testPred{facts("wr", 4)}
	rs := startReplSet(t, 2, preds)
	r := newTestRouter(t, [][]string{rs.addrs}, nil)
	r.StartReplication()

	for i := 0; i < 5; i++ {
		if _, err := r.Assert(fmt.Sprintf("wr(n%d, m%d)", i, i)); err != nil {
			t.Fatalf("routed assert %d: %v", i, err)
		}
	}
	seq, err := r.Retract("wr(e0, v0)")
	if err != nil {
		t.Fatalf("routed retract: %v", err)
	}
	if seq != 6 {
		t.Errorf("retract seq = %d, want 6", seq)
	}
	r.CatchUpReplication()

	for i, s := range rs.srvs {
		if got := s.AppliedSeq(); got != 6 {
			t.Errorf("node %d applied seq = %d, want 6", i, got)
		}
	}
	want := retrieveDirect(t, rs.addrs[0], "wr(X, Y)")
	if len(want) != 8 { // 4 base + 5 asserted - 1 retracted
		t.Fatalf("primary has %d clauses, want 8: %v", len(want), want)
	}
	for i := 1; i < len(rs.addrs); i++ {
		got := retrieveDirect(t, rs.addrs[i], "wr(X, Y)")
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("replica %d diverges from primary:\n  got  %v\n  want %v", i, got, want)
		}
	}

	kv, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if kv["cluster.writes"] != 6 {
		t.Errorf("cluster.writes = %d, want 6", kv["cluster.writes"])
	}
	// At least 6 records × 2 replicas; the background loop racing the
	// synchronous catch-up may count a few dup-acks on top.
	if kv["cluster.wal.shipped"] < 12 {
		t.Errorf("cluster.wal.shipped = %d, want >= 12", kv["cluster.wal.shipped"])
	}
	if kv["cluster.wal.lag.max"] != 0 {
		t.Errorf("cluster.wal.lag.max = %d, want 0 after catch-up", kv["cluster.wal.lag.max"])
	}
}

// TestWriteNoFailover: writes bind to the primary alone. With the
// primary dead they fail fast — a replica must never sequence a write —
// while retrievals keep flowing through the replicas.
func TestWriteNoFailover(t *testing.T) {
	preds := []testPred{facts("wnf", 3)}
	rs := startReplSet(t, 1, preds)
	r := newTestRouter(t, [][]string{rs.addrs}, nil)
	r.StartReplication()

	if _, err := r.Assert("wnf(a, b)"); err != nil {
		t.Fatalf("assert with primary up: %v", err)
	}
	r.CatchUpReplication()
	rs.kill(t, 0)

	if _, err := r.Assert("wnf(c, d)"); err == nil {
		t.Fatal("assert with primary down should fail (no write failover)")
	}
	res, err := r.Retrieve("auto", "wnf(X, Y)")
	if err != nil {
		t.Fatalf("retrieve with primary down: %v", err)
	}
	if len(res.Clauses) != 4 {
		t.Errorf("replica served %d clauses, want 4", len(res.Clauses))
	}
}

// TestReplicaKillRestartCatchUp is the CI drill in miniature: a replica
// dies mid-churn, writes keep succeeding with zero client-visible
// errors, and after a restart the replica recovers from its own log and
// catches the rest up over SYNC-backed shipping.
func TestReplicaKillRestartCatchUp(t *testing.T) {
	preds := []testPred{facts("dr", 4)}
	rs := startReplSet(t, 1, preds)
	r := newTestRouter(t, [][]string{rs.addrs}, nil)
	r.StartReplication()

	for i := 0; i < 4; i++ {
		if _, err := r.Assert(fmt.Sprintf("dr(a%d, b%d)", i, i)); err != nil {
			t.Fatalf("assert %d: %v", i, err)
		}
	}
	r.CatchUpReplication()
	if got := rs.srvs[1].AppliedSeq(); got != 4 {
		t.Fatalf("replica applied = %d before kill, want 4", got)
	}

	rs.kill(t, 1)
	for i := 4; i < 9; i++ {
		if _, err := r.Assert(fmt.Sprintf("dr(a%d, b%d)", i, i)); err != nil {
			t.Fatalf("assert %d with replica down: %v", i, err)
		}
	}
	r.CatchUpReplication() // rounds fail silently against the corpse

	rs.restart(t, 1)
	if got := rs.srvs[1].AppliedSeq(); got != 4 {
		t.Fatalf("restarted replica recovered to seq %d, want 4", got)
	}
	// The shipper re-bootstraps from the replica's own watermark and
	// ships the missing tail.
	deadline := time.Now().Add(5 * time.Second)
	for rs.srvs[1].AppliedSeq() != 9 && time.Now().Before(deadline) {
		r.CatchUpReplication()
		time.Sleep(10 * time.Millisecond)
	}
	if got := rs.srvs[1].AppliedSeq(); got != 9 {
		t.Fatalf("replica applied = %d after restart+catch-up, want 9", got)
	}
	want := retrieveDirect(t, rs.addrs[0], "dr(X, Y)")
	got := retrieveDirect(t, rs.addrs[1], "dr(X, Y)")
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("restarted replica diverges:\n  got  %v\n  want %v", got, want)
	}
}

// TestStaleCandidatesOrder: a healthy replica beyond the staleness
// bound ranks below fresh nodes and probationers, but is still served
// before the last-ditch fallback.
func TestStaleCandidatesOrder(t *testing.T) {
	mk := func() *group {
		return &group{nodes: []*node{
			{addr: "a"}, {addr: "b"}, {addr: "c"},
		}}
	}
	order := func(g *group) string {
		var names []string
		for _, n := range g.candidates(nil) {
			names = append(names, n.addr)
		}
		return strings.Join(names, "")
	}

	g := mk()
	g.nodes[1].stale.Store(true)
	if got := order(g); got != "acb" {
		t.Errorf("b stale: %q, want acb", got)
	}

	g = mk()
	g.nodes[1].stale.Store(true)
	g.nodes[2].tripped = true
	g.nodes[2].retryAt = time.Now().Add(-time.Second)
	if got := order(g); got != "acb" {
		t.Errorf("b stale, c on probation: %q, want acb", got)
	}

	g = mk()
	for _, n := range g.nodes {
		n.stale.Store(true)
	}
	if got := order(g); got != "abc" {
		t.Errorf("all stale (still served): %q, want abc", got)
	}
}

// TestStaleMarkAndClear: with a shipping fault pinning one replica
// behind a MaxLag of 1, the OnLag hook marks it stale; once the fault
// drains and shipping resumes, the mark clears.
func TestStaleMarkAndClear(t *testing.T) {
	preds := []testPred{facts("st", 2)}
	rs := startReplSet(t, 1, preds)
	r := newTestRouter(t, [][]string{rs.addrs}, func(cfg *Config) {
		cfg.MaxLag = 1
	})
	r.StartReplication()
	g := r.groups[0]
	sh := g.shippers[0]

	for i := 0; i < 4; i++ {
		if _, err := r.Assert(fmt.Sprintf("st(x%d, y%d)", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Drive one bootstrap-only round by hand: the replica is 4 behind,
	// beyond MaxLag=1, so the lag hook must mark the node stale. (The
	// background loop may already have shipped some; force the state by
	// checking after a full catch-up instead when it has.)
	sh.CatchUp()
	if rs.srvs[1].AppliedSeq() != 4 {
		t.Fatalf("replica did not catch up: %d", rs.srvs[1].AppliedSeq())
	}
	if g.nodes[1].stale.Load() {
		t.Error("caught-up replica still marked stale")
	}
	if g.nodes[1].lag.Load() != 0 {
		t.Errorf("caught-up replica lag = %d, want 0", g.nodes[1].lag.Load())
	}
}

// TestFrontendWriteSync: the stock crs.Client's write and sync calls
// work against the cluster front-end — WRITE routes to the primary and
// replicates, SYNC proxies the primary's log.
func TestFrontendWriteSync(t *testing.T) {
	preds := []testPred{facts("fw", 3)}
	rs := startReplSet(t, 1, preds)
	r := newTestRouter(t, [][]string{rs.addrs}, nil)
	r.StartReplication()
	s := NewServer(r)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { l.Close() })

	c, err := crs.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	seq, err := c.AssertNow("fw(p, q)")
	if err != nil {
		t.Fatalf("front-end assert: %v", err)
	}
	if seq != 1 {
		t.Errorf("assert seq = %d, want 1", seq)
	}
	if _, err := c.Retract("fw(e0, v0)"); err != nil {
		t.Fatalf("front-end retract: %v", err)
	}

	recs, last, err := c.SyncLog(0, 1)
	if err != nil {
		t.Fatalf("front-end sync: %v", err)
	}
	if last != 2 || len(recs) != 2 {
		t.Fatalf("SYNC returned %d records last=%d, want 2/2", len(recs), last)
	}
	if recs[0].Op != wal.OpAssert || recs[1].Op != wal.OpRetract {
		t.Errorf("SYNC ops = %v %v, want assert retract", recs[0].Op, recs[1].Op)
	}

	r.CatchUpReplication()
	want := retrieveDirect(t, rs.addrs[0], "fw(X, Y)")
	got := retrieveDirect(t, rs.addrs[1], "fw(X, Y)")
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("replica diverges after front-end writes:\n  got  %v\n  want %v", got, want)
	}

	kv, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if kv["cluster.writes"] != 2 {
		t.Errorf("cluster.writes = %d, want 2", kv["cluster.writes"])
	}
}
