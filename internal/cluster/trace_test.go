package cluster

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"clare/internal/core"
	"clare/internal/crs"
	"clare/internal/telemetry"
)

// startTracedCluster is startCluster with a tracer in every backend, so
// RETRIEVE replies carry span subtrees for the router to stitch.
func startTracedCluster(t *testing.T, shards, replicas int, preds []testPred) *testCluster {
	t.Helper()
	tc := &testCluster{preds: preds}
	for i := 0; i < shards; i++ {
		var part []testPred
		for _, p := range preds {
			if ShardOf(p.indicator(), shards) == i {
				part = append(part, p)
			}
		}
		var srvs []*crs.Server
		var lis []net.Listener
		var addrs []string
		for j := 0; j < replicas; j++ {
			cfg := core.DefaultConfig()
			cfg.Tracer = telemetry.NewTracer(8)
			r, err := core.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s := crs.NewServer(r)
			for _, p := range part {
				if err := s.Load("test", p.clauses); err != nil {
					t.Fatal(err)
				}
			}
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			go s.Serve(l)
			t.Cleanup(func() { l.Close() })
			srvs, lis, addrs = append(srvs, s), append(lis, l), append(addrs, l.Addr().String())
		}
		tc.srvs = append(tc.srvs, srvs)
		tc.lis = append(tc.lis, lis)
		tc.addrs = append(tc.addrs, addrs)
	}
	return tc
}

// checkSpanTree verifies parent-link consistency: every parent is an ID
// present in the tree (the root's 0 excepted), i.e. one connected trace,
// not fragments.
func checkSpanTree(t *testing.T, spans []telemetry.WireSpan) {
	t.Helper()
	ids := make(map[int]bool, len(spans))
	for _, ws := range spans {
		ids[ws.ID] = true
	}
	roots := 0
	for _, ws := range spans {
		if ws.Parent == 0 {
			roots++
			continue
		}
		if !ids[ws.Parent] {
			t.Errorf("span %d (%s) has dangling parent %d", ws.ID, ws.Name, ws.Parent)
		}
	}
	if roots != 1 {
		t.Errorf("trace has %d roots, want 1", roots)
	}
}

// spanNames collects the set of span names in a tree.
func spanNames(spans []telemetry.WireSpan) map[string]int {
	names := make(map[string]int)
	for _, ws := range spans {
		names[ws.Name]++
	}
	return names
}

// TestStitchedCrossProcessTrace is the acceptance scenario: 2 shards ×
// 2 replicas behind a traced router yield ONE trace containing the
// router's route/shard spans, the network attempt spans, and the
// backends' pipeline spans, all with consistent parent links.
func TestStitchedCrossProcessTrace(t *testing.T) {
	preds := testPreds()
	tc := startTracedCluster(t, 2, 2, preds)
	tracer := telemetry.NewTracer(4)
	r := newTestRouter(t, tc.addrs, func(cfg *Config) { cfg.Tracer = tracer })
	p := predOnShard(t, preds, 2, 1)
	if _, err := r.Retrieve("fs1+fs2", p.name+"(X, Y)"); err != nil {
		t.Fatal(err)
	}

	traces := tracer.Last(1)
	if len(traces) != 1 {
		t.Fatal("router recorded no trace")
	}
	spans := traces[0].Wire(0)
	checkSpanTree(t, spans)
	names := spanNames(spans)
	for _, want := range []string{"route", "shard", "net", "retrieve"} {
		if names[want] == 0 {
			t.Errorf("stitched trace missing %q span (have %v)", want, names)
		}
	}
	// The backend subtree must be marked as grafted remote spans.
	remote := 0
	for _, ws := range spans {
		if ws.Attrs["remote_span"] != "" {
			remote++
		}
	}
	if remote == 0 {
		t.Error("no grafted remote spans in the router trace")
	}
}

// TestStitchedTraceOverWire runs the full two-process wire path: a
// crs.Client sends the trace header to the cluster front-end, which
// stitches router + backend spans and returns the tree in the TRACE
// reply.
func TestStitchedTraceOverWire(t *testing.T) {
	preds := testPreds()
	tc := startTracedCluster(t, 2, 2, preds)
	tracer := telemetry.NewTracer(4)
	r := newTestRouter(t, tc.addrs, func(cfg *Config) { cfg.Tracer = tracer })
	srv := NewServer(r)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { l.Close() })

	c, err := crs.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p := preds[0]
	ctx := &telemetry.TraceContext{TraceID: 77, ParentSpan: 3}
	res, err := c.RetrieveTraced("auto", p.name+"(X, Y)", ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clauses) != len(p.clauses) {
		t.Errorf("got %d clauses, want %d", len(res.Clauses), len(p.clauses))
	}
	if len(res.Spans) == 0 {
		t.Fatal("traced wire retrieval returned no span tree")
	}
	checkSpanTree(t, res.Spans)
	names := spanNames(res.Spans)
	for _, want := range []string{"route", "shard", "net", "retrieve"} {
		if names[want] == 0 {
			t.Errorf("wire trace missing %q span (have %v)", want, names)
		}
	}
	// The router joined the caller's context.
	if got := tracer.Last(1); len(got) != 1 || got[0].Remote == nil || *got[0].Remote != *ctx {
		t.Error("router trace did not record the caller's context")
	}

	// An old client (no header) still parses against the front-end.
	plain, err := c.Retrieve("auto", p.name+"(X, Y)")
	if err != nil {
		t.Fatalf("headerless retrieve through front-end: %v", err)
	}
	if plain.Spans != nil {
		t.Error("headerless retrieve came back with spans")
	}
}

// TestStitchedTraceSurvivesFailover: with one replica killed after the
// pool warmed, the traced retrieval still succeeds and the stitched tree
// shows the dead attempt (a net span with an error attr) next to the
// successful one.
func TestStitchedTraceSurvivesFailover(t *testing.T) {
	preds := testPreds()
	tc := startTracedCluster(t, 2, 2, preds)
	tracer := telemetry.NewTracer(4)
	r := newTestRouter(t, tc.addrs, func(cfg *Config) { cfg.Tracer = tracer })
	p := predOnShard(t, preds, 2, 0)
	goal := p.name + "(X, Y)"

	if _, err := r.Retrieve("auto", goal); err != nil {
		t.Fatal(err)
	}
	// Pin replica 0 at the head of the candidate order so the traced
	// retrieval hits the dead node first and the failover lands in the
	// trace — load-aware ranking would otherwise sidestep it whenever
	// the warm sample exceeds the idle prior (routine under -race).
	for i := 0; i < 64; i++ {
		r.nodeLat.Observe(tc.addrs[0][0], 100*time.Microsecond)
	}
	tc.kill(t, 0, 0)

	res, err := r.RetrieveTraced("auto", goal, &telemetry.TraceContext{TraceID: 5, ParentSpan: 1})
	if err != nil {
		t.Fatalf("traced retrieve after replica death: %v", err)
	}
	if len(res.Clauses) != len(p.clauses) {
		t.Errorf("failover lost clauses: got %d, want %d", len(res.Clauses), len(p.clauses))
	}
	checkSpanTree(t, res.Spans)
	var nets, failed int
	for _, ws := range res.Spans {
		if ws.Name != "net" {
			continue
		}
		nets++
		if ws.Attrs["error"] != "" {
			failed++
		}
	}
	if nets < 2 || failed == 0 {
		t.Errorf("failover not visible in trace: %d net spans, %d failed", nets, failed)
	}
	if names := spanNames(res.Spans); names["retrieve"] == 0 {
		t.Errorf("surviving replica's pipeline spans missing (have %v)", names)
	}
}

// TestClusterExplain: EXPLAIN through the front-end merges fanned-out
// profiles with monotone candidate counts, and routed (single-shard)
// profiles pass through unchanged.
func TestClusterExplain(t *testing.T) {
	preds := testPreds()
	tc := startTracedCluster(t, 2, 1, preds)
	r := newTestRouter(t, tc.addrs, nil)
	srv := NewServer(r)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { l.Close() })
	c, err := crs.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	p := preds[2]
	geti := func(res *crs.ExplainResult, key string) int {
		t.Helper()
		n, err := strconv.Atoi(res.Get(key))
		if err != nil {
			t.Fatalf("%s = %q, want an int", key, res.Get(key))
		}
		return n
	}

	// Routed: one shard answers, profile arrives as the backend built it.
	res, err := c.Explain("fs1+fs2", p.name+"(X, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Get("predicate"); got != p.indicator() {
		t.Errorf("predicate = %q, want %s", got, p.indicator())
	}
	if total := geti(res, "candidates.total"); total != len(p.clauses) {
		t.Errorf("candidates.total = %d, want %d", total, len(p.clauses))
	}

	// Fanned out: software mode hits every shard; the merged counts must
	// stay monotone and the unified count must match the predicate.
	res, err = c.Explain("software", p.name+"(X, Y)")
	if err != nil {
		t.Fatal(err)
	}
	total, unified := geti(res, "candidates.total"), geti(res, "candidates.unified")
	if unified != len(p.clauses) {
		t.Errorf("merged candidates.unified = %d, want %d", unified, len(p.clauses))
	}
	if total < unified {
		t.Errorf("merged counts not monotone: total=%d unified=%d", total, unified)
	}
}

// TestExplainMergeValues pins the fan-out merge rules on synthetic
// profiles: ints sum, durations max, bools OR, ratios recomputed.
func TestExplainMergeValues(t *testing.T) {
	mk := func(kv ...string) *crs.ExplainResult {
		res := &crs.ExplainResult{}
		for i := 0; i < len(kv); i += 2 {
			res.Entries = append(res.Entries, core.ExplainEntry{Key: kv[i], Value: kv[i+1]})
		}
		return res
	}
	a := mk("mode", "software", "candidates.total", "10", "candidates.after_fs1", "8",
		"candidates.unified", "2", "fs1.ghost_ratio", "0.7500",
		"sim.total", "20ms", "cache_hit", "false")
	b := mk("mode", "software", "candidates.total", "6", "candidates.after_fs1", "4",
		"candidates.unified", "1", "fs1.ghost_ratio", "0.7500",
		"sim.total", "35ms", "cache_hit", "true")
	m := mergeExplain([]*crs.ExplainResult{a, b})
	want := map[string]string{
		"mode":                 "software",
		"candidates.total":     "16",
		"candidates.after_fs1": "12",
		"candidates.unified":   "3",
		"fs1.ghost_ratio":      "0.7500", // 1 - 3/12
		"sim.total":            "35ms",
		"cache_hit":            "true",
	}
	for k, v := range want {
		if got := m.Get(k); got != v {
			t.Errorf("merged %s = %q, want %q", k, got, v)
		}
	}
	if fmt.Sprint(m.Entries[0].Key) != "mode" {
		t.Errorf("merge lost entry order: first key %q", m.Entries[0].Key)
	}
	if !strings.HasPrefix(m.Entries[1].Key, "candidates.") {
		t.Errorf("merge lost entry order: second key %q", m.Entries[1].Key)
	}
}
