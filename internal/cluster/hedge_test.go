package cluster

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// delayProxy forwards TCP bytes to a backend, delaying every
// backend-to-client chunk by a fixed duration once afterLine request
// lines (client-to-backend newlines) have passed — afterLine 0 is a
// uniformly slow replica, afterLine n lets the handshake, probe and
// warm-up traffic through fast and stalls what follows.
type delayProxy struct {
	l         net.Listener
	backend   string
	delay     time.Duration
	afterLine int64
	lines     atomic.Int64
}

func newDelayProxy(t *testing.T, backend string, delay time.Duration, afterLine int64) *delayProxy {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &delayProxy{l: l, backend: backend, delay: delay, afterLine: afterLine}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go p.handle(c)
		}
	}()
	return p
}

func (p *delayProxy) addr() string { return p.l.Addr().String() }

func (p *delayProxy) handle(client net.Conn) {
	backend, err := net.Dial("tcp", p.backend)
	if err != nil {
		client.Close()
		return
	}
	go func() {
		buf := make([]byte, 32<<10)
		for {
			n, err := client.Read(buf)
			if n > 0 {
				for _, b := range buf[:n] {
					if b == '\n' {
						p.lines.Add(1)
					}
				}
				if _, werr := backend.Write(buf[:n]); werr != nil {
					break
				}
			}
			if err != nil {
				break
			}
		}
		backend.Close()
		client.Close()
	}()
	buf := make([]byte, 32<<10)
	for {
		n, err := backend.Read(buf)
		if n > 0 {
			if p.lines.Load() > p.afterLine {
				time.Sleep(p.delay)
			}
			if _, werr := client.Write(buf[:n]); werr != nil {
				break
			}
		}
		if err != nil {
			break
		}
	}
	client.Close()
	backend.Close()
}

// TestHedgeCutsSlowReplica puts the declared-first replica behind a
// 30ms delay proxy: a hedged retrieval must fire a duplicate at the
// hedge floor, win on the fast replica, and return well under the slow
// replica's wall.
func TestHedgeCutsSlowReplica(t *testing.T) {
	p := facts("hedgey", 8)
	_, slow := startBackend(t, []testPred{p})
	_, fast := startBackend(t, []testPred{p})
	proxy := newDelayProxy(t, slow.Addr().String(), 30*time.Millisecond, 0)

	r := newTestRouter(t, [][]string{{proxy.addr(), fast.Addr().String()}}, func(c *Config) {
		c.Hedge = true
		c.HedgeFloor = 5 * time.Millisecond
	})

	start := time.Now()
	res, err := r.Retrieve("auto", p.name+"(e1, V)")
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clauses) != 1 {
		t.Fatalf("got %d clauses, want 1", len(res.Clauses))
	}
	if wall >= 25*time.Millisecond {
		t.Fatalf("hedged retrieval took %v, want well under the slow replica's 30ms delay", wall)
	}
	if got := r.hedges.Load(); got != 1 {
		t.Fatalf("hedges fired = %d, want 1", got)
	}
	if got := r.hedgeWins.Load(); got != 1 {
		t.Fatalf("hedge wins = %d, want 1", got)
	}
	st, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]int64{
		"cluster.hedge.enabled": 1,
		"cluster.hedges":        1,
		"cluster.hedge.wins":    1,
	} {
		if st[k] != want {
			t.Fatalf("Stats()[%q] = %d, want %d", k, st[k], want)
		}
	}
}

// TestHedgeAbortsInFlightArm stalls the slow replica only after the
// handshake, probe and one warm request have passed, so the stalled
// arm holds a pooled, registered connection mid-call when the hedge
// wins. The winning return must not wait out the loser's reply —
// cancellation severs the connection instead of negotiating QUIT
// behind the stalled response.
func TestHedgeAbortsInFlightArm(t *testing.T) {
	p := facts("midflight", 8)
	_, slow := startBackend(t, []testPred{p})
	_, fast := startBackend(t, []testPred{p})
	// Lines 1-3 are HELLO, the STATS probe and the warm retrieval;
	// everything after stalls 30ms.
	proxy := newDelayProxy(t, slow.Addr().String(), 30*time.Millisecond, 3)

	r := newTestRouter(t, [][]string{{proxy.addr(), fast.Addr().String()}}, func(c *Config) {
		c.Hedge = true
		c.HedgeFloor = 5 * time.Millisecond
	})

	if _, err := r.Retrieve("auto", p.name+"(e1, V)"); err != nil {
		t.Fatal(err)
	}
	if got := r.hedges.Load(); got != 0 {
		t.Fatalf("warm request hedged (%d), want 0", got)
	}
	// Pin the proxied replica at the head of the candidate order: the
	// warm request left it a latency sample, and once that sample
	// exceeds the other replica's idle prior (routine under -race) the
	// load-aware ranking would route the next request around the stall
	// this test exists to exercise.
	for i := 0; i < 64; i++ {
		r.nodeLat.Observe(proxy.addr(), 100*time.Microsecond)
	}

	start := time.Now()
	res, err := r.Retrieve("auto", p.name+"(e2, V)")
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clauses) != 1 {
		t.Fatalf("got %d clauses, want 1", len(res.Clauses))
	}
	if wall >= 25*time.Millisecond {
		t.Fatalf("hedged retrieval took %v: the winning arm waited out the aborted arm's stalled reply", wall)
	}
	if got, won := r.hedges.Load(), r.hedgeWins.Load(); got != 1 || won != 1 {
		t.Fatalf("hedges fired = %d won = %d, want 1/1", got, won)
	}
}

// TestHedgeFastReplicaNoFire leaves both replicas fast: no hedge
// should fire on a request that answers inside the floor.
func TestHedgeFastReplicaNoFire(t *testing.T) {
	p := facts("calm", 8)
	_, a := startBackend(t, []testPred{p})
	_, b := startBackend(t, []testPred{p})
	r := newTestRouter(t, [][]string{{a.Addr().String(), b.Addr().String()}}, func(c *Config) {
		c.Hedge = true
		c.HedgeFloor = 500 * time.Millisecond
	})
	for i := 0; i < 10; i++ {
		if _, err := r.Retrieve("auto", fmt.Sprintf("%s(e%d, V)", p.name, i%8)); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.hedges.Load(); got != 0 {
		t.Fatalf("hedges fired = %d, want 0 with fast replicas", got)
	}
}

// TestHedgeFailoverWhenBothArmsDie kills both hedge arms' backends: a
// third replica must still answer through the post-hedge failover
// ladder.
func TestHedgeFailoverWhenBothArmsDie(t *testing.T) {
	p := facts("ladder", 6)
	tc := startCluster(t, 1, 3, []testPred{p})
	tc.kill(t, 0, 0)
	tc.kill(t, 0, 1)
	r := newTestRouter(t, tc.addrs, func(c *Config) {
		c.Hedge = true
		c.HedgeFloor = time.Millisecond
	})
	res, err := r.Retrieve("auto", p.name+"(e2, V)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clauses) != 1 {
		t.Fatalf("got %d clauses, want 1", len(res.Clauses))
	}
}
