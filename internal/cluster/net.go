package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"clare/internal/crs"
	"clare/internal/telemetry"
)

// maxWireLine mirrors the crs server's per-line bound.
const maxWireLine = 4 * 1024 * 1024

// Server is the cluster's wire front-end: it speaks the existing CRS
// protocol unchanged (HELLO/RETRIEVE/WRITE/SYNC/STATS/BEGIN/ASSERT/
// COMMIT/ABORT/QUIT), so crsctl and crs.Client work against a cluster
// transparently. RETRIEVE and STATS scatter-gather through the Router;
// WRITE and SYNC route to the owning shard's primary; transactions pass
// through to the primary of the shard owning the first asserted
// predicate (a transaction may touch exactly one shard — cross-shard
// transactions are rejected, there is no distributed commit).
//
// The diagnosis verbs follow the same split: FLIGHT dumps the ROUTER'S
// own flight recorder (the cluster-level view — routing decisions,
// hedges, merged funnels), while SLOWLOG scatter-gathers the backends'
// slow-query captures merged by capture time, because the EXPLAIN
// re-run that fills a capture only ever happens where the clauses live.
type Server struct {
	router *Router

	nextSess atomic.Int64

	connMu   sync.Mutex
	conns    map[net.Conn]struct{}
	handlers sync.WaitGroup
	draining bool
}

// NewServer wraps a router in the wire front-end.
func NewServer(r *Router) *Server {
	return &Server{router: r, conns: make(map[net.Conn]struct{})}
}

// Router exposes the underlying scatter-gather router.
func (s *Server) Router() *Router { return s.router }

// Serve accepts connections on l until it closes, one handler per
// connection — the same accept loop contract as crs.Server.Serve.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			s.handlers.Wait()
			return err
		}
		s.connMu.Lock()
		if s.draining {
			s.connMu.Unlock()
			fmt.Fprintln(conn, "ERR server shutting down")
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.handlers.Add(1)
		s.connMu.Unlock()
		go func() {
			defer s.handlers.Done()
			defer func() {
				s.connMu.Lock()
				delete(s.conns, conn)
				s.connMu.Unlock()
			}()
			s.handle(conn)
		}()
	}
}

// Shutdown drains the front-end: new connections are refused and
// Shutdown returns when in-flight handlers finish, or force-closes the
// stragglers when ctx expires first.
func (s *Server) Shutdown(ctx context.Context) error {
	s.connMu.Lock()
	s.draining = true
	s.connMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.handlers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.connMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
		<-done
		return ctx.Err()
	}
}

// routedTx is one connection's pass-through transaction: a backend
// client pinned to the shard group that owns the first asserted
// predicate, with BEGIN deferred until that first ASSERT names it.
type routedTx struct {
	shard  int
	node   *node
	client *crs.Client
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	sessID := s.nextSess.Add(1)
	in := bufio.NewScanner(conn)
	in.Buffer(make([]byte, 0, 64*1024), maxWireLine)
	out := bufio.NewWriter(conn)
	reply := func(format string, args ...any) {
		fmt.Fprintf(out, format+"\n", args...)
		out.Flush()
	}

	var tx *routedTx
	// dropTx abandons a pass-through transaction whose backend leg
	// failed: closing the client closes its server session, which aborts
	// the staged state and releases the predicate locks.
	dropTx := func() {
		if tx != nil && tx.client != nil {
			tx.node.discard(tx.client)
		}
		tx = nil
	}
	defer dropTx()

	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		if line == "" {
			continue
		}
		cmd, rest, _ := strings.Cut(line, " ")
		switch strings.ToUpper(cmd) {
		case "HELLO":
			reply("OK crs %d", sessID)
		case "QUIT":
			reply("BYE")
			return
		case "STATS":
			kv, err := s.router.Stats()
			if err != nil {
				reply("ERR %v", err)
				continue
			}
			keys := make([]string, 0, len(kv))
			for k := range kv {
				keys = append(keys, k)
			}
			sort.Strings(keys) // deterministic wire order, cluster-wide
			fmt.Fprintf(out, "STATS %d\n", len(keys))
			for _, k := range keys {
				fmt.Fprintf(out, "S %s %d\n", k, kv[k])
			}
			out.Flush()
		case "FLIGHT":
			n, err := optionalCount(rest)
			if err != nil {
				reply("ERR usage: FLIGHT [n]")
				continue
			}
			recs := s.router.Flight().Snapshot(n)
			fmt.Fprintf(out, "FLIGHT %d\n", len(recs))
			for _, rec := range recs {
				blob, err := json.Marshal(rec)
				if err != nil {
					continue
				}
				fmt.Fprintf(out, "F %s\n", blob)
			}
			out.Flush()
		case "SLOWLOG":
			n, err := optionalCount(rest)
			if err != nil {
				reply("ERR usage: SLOWLOG [n]")
				continue
			}
			caps, err := s.router.SlowTail(n)
			if err != nil {
				reply("ERR %v", errText(err))
				continue
			}
			fmt.Fprintf(out, "SLOWLOG %d\n", len(caps))
			for _, c := range caps {
				blob, err := json.Marshal(c)
				if err != nil {
					continue
				}
				fmt.Fprintf(out, "Q %s\n", blob)
			}
			out.Flush()
		case "RETRIEVE":
			modeWord, goalText, ok := strings.Cut(rest, " ")
			if !ok {
				reply("ERR usage: RETRIEVE <mode> <goal>")
				continue
			}
			if _, err := crs.ParseMode(modeWord); err != nil {
				reply("ERR %v", err)
				continue
			}
			goalText, tc := crs.CutTraceHeader(goalText)
			res, err := s.router.RetrieveTraced(modeWord, strings.TrimSuffix(goalText, "."), tc)
			if err != nil {
				reply("ERR %v", errText(err))
				continue
			}
			reply("CANDIDATES %d", len(res.Clauses))
			for _, cl := range res.Clauses {
				reply("C %s", cl)
			}
			reply("%s", res.Stats)
			if tc != nil {
				reply("TRACE %s", spanToken(res.Spans))
			}
		case "EXPLAIN":
			modeWord, goalText, ok := strings.Cut(rest, " ")
			if !ok {
				reply("ERR usage: EXPLAIN <mode> <goal>")
				continue
			}
			if _, err := crs.ParseMode(modeWord); err != nil {
				reply("ERR %v", err)
				continue
			}
			goalText, tc := crs.CutTraceHeader(goalText)
			res, err := s.router.ExplainTraced(modeWord, strings.TrimSuffix(goalText, "."), tc)
			if err != nil {
				reply("ERR %v", errText(err))
				continue
			}
			fmt.Fprintf(out, "EXPLAIN %d\n", len(res.Entries))
			for _, e := range res.Entries {
				fmt.Fprintf(out, "E %s %s\n", e.Key, e.Value)
			}
			out.Flush()
			if tc != nil {
				reply("TRACE %s", spanToken(res.Spans))
			}
		case "WRITE":
			opWord, clauseText, ok := strings.Cut(rest, " ")
			if !ok {
				reply("ERR usage: WRITE assert|retract <clause>.")
				continue
			}
			seq, err := s.router.Write(opWord, strings.TrimSuffix(strings.TrimSpace(clauseText), "."))
			if err != nil {
				reply("ERR %v", errText(err))
				continue
			}
			reply("OK %d", seq)
		case "SYNC":
			fields := strings.Fields(rest)
			if len(fields) != 2 {
				reply("ERR usage: SYNC <shard> <from-seq>")
				continue
			}
			shard, err1 := strconv.Atoi(fields[0])
			from, err2 := strconv.ParseUint(fields[1], 10, 64)
			if err1 != nil || err2 != nil {
				reply("ERR bad SYNC arguments %q", rest)
				continue
			}
			recs, last, err := s.router.SyncLog(shard, from)
			if err != nil {
				reply("ERR %v", errText(err))
				continue
			}
			fmt.Fprintf(out, "LOG %d %d\n", len(recs), last)
			for _, rec := range recs {
				fmt.Fprintf(out, "R %s\n", rec.WireText())
			}
			out.Flush()
		case "BEGIN":
			if tx != nil {
				reply("ERR crs: transaction already in progress")
				continue
			}
			tx = &routedTx{}
			reply("OK")
		case "ASSERT":
			if tx == nil {
				reply("ERR crs: no transaction in progress")
				continue
			}
			clause := strings.TrimSuffix(rest, ".")
			head := clause
			if h, _, ok := strings.Cut(clause, ":-"); ok {
				head = h
			}
			pi, err := GoalIndicator(strings.TrimSpace(head))
			if err != nil {
				reply("ERR %v", err)
				continue
			}
			shard := ShardOf(pi, s.router.Shards())
			if tx.client == nil {
				// First ASSERT pins the transaction to its shard's
				// PRIMARY: a transaction is a write, and only the primary
				// sequences writes into the shard's log (a replica would
				// reject BEGIN as read-only anyway). A stale pooled
				// connection gets one fresh-dial retry; beyond that the
				// transaction fails — there is no write failover.
				p := s.router.groups[shard].primary()
				var c *crs.Client
				var lastErr error
				for attempt := 0; attempt < 2 && c == nil; attempt++ {
					cc, pooled, err := p.get(s.router.cfg)
					if err != nil {
						p.strike(s.router)
						lastErr = err
						break
					}
					if err := cc.Begin(); err != nil {
						var se *crs.ServerError
						if errors.As(err, &se) {
							p.put(cc, s.router.cfg)
							lastErr = err
							break
						}
						p.discard(cc)
						lastErr = err
						if !pooled {
							p.strike(s.router)
							break
						}
						continue
					}
					p.clear(s.router)
					c = cc
				}
				if c == nil {
					reply("ERR %v", errText(lastErr))
					continue
				}
				tx.client, tx.node, tx.shard = c, p, shard
			} else if shard != tx.shard {
				reply("ERR cluster: cross-shard transaction (%s is on shard %d, transaction pinned to %d)",
					pi, shard, tx.shard)
				continue
			}
			if err := tx.client.Assert(clause); err != nil {
				var se *crs.ServerError
				if errors.As(err, &se) {
					reply("ERR %s", se.Msg)
				} else {
					// Transport failure mid-transaction: the staged state
					// is gone with the session; the client must re-run.
					dropTx()
					reply("ERR cluster: backend lost mid-transaction: %v", err)
				}
				continue
			}
			reply("OK")
		case "COMMIT", "ABORT":
			if tx == nil {
				reply("ERR crs: no transaction in progress")
				continue
			}
			if tx.client == nil { // empty transaction: nothing staged anywhere
				tx = nil
				reply("OK")
				continue
			}
			var err error
			if strings.ToUpper(cmd) == "COMMIT" {
				err = tx.client.Commit()
			} else {
				err = tx.client.Abort()
			}
			if err != nil {
				var se *crs.ServerError
				if errors.As(err, &se) {
					tx.node.put(tx.client, s.router.cfg)
					tx = nil
					reply("ERR %s", se.Msg)
				} else {
					dropTx()
					reply("ERR cluster: backend lost mid-transaction: %v", err)
				}
				continue
			}
			committed := strings.ToUpper(cmd) == "COMMIT"
			tx.node.put(tx.client, s.router.cfg)
			if committed {
				// The committed seqs are the primary's business; waking
				// the shard's shippers ships them without waiting out
				// the idle interval.
				s.router.NotifyShard(tx.shard)
			}
			tx = nil
			reply("OK")
		default:
			reply("ERR unknown command %q", cmd)
		}
	}
	if err := in.Err(); errors.Is(err, bufio.ErrTooLong) {
		reply("ERR line too long (max %d bytes)", maxWireLine)
	}
}

// spanToken serializes a stitched span tree for the TRACE reply line;
// "-" stands for "no trace recorded" (the router has no tracer).
func spanToken(spans []telemetry.WireSpan) string {
	if tok := telemetry.EncodeWireSpans(spans); tok != "" {
		return tok
	}
	return "-"
}

// optionalCount parses a FLIGHT/SLOWLOG verb's optional count argument
// (absent means 0 = "everything"), mirroring the crs server's rule.
func optionalCount(rest string) (int, error) {
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return 0, nil
	}
	v, err := strconv.Atoi(rest)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("cluster: bad count %q", rest)
	}
	return v, nil
}

// errText strips the crs client's "crs server: " prefix so an ERR
// relayed through the router reads like the backend's original reply.
func errText(err error) string {
	if err == nil {
		return "cluster: no reachable replica"
	}
	var se *crs.ServerError
	if errors.As(err, &se) {
		return se.Msg
	}
	return err.Error()
}
