// Command kbgen generates synthetic knowledge bases as Prolog source —
// the workload families used by the experiments (family/married_couple,
// keyed relations, structured facts, rule/fact mixes, Warren-scale KBs).
//
// Usage:
//
//	kbgen -kind family -n 1000 -same 8        > family.pl
//	kbgen -kind relation -n 50000 -domain 500 > emp.pl
//	kbgen -kind structured -n 2000            > shapes.pl
//	kbgen -kind rules -rules 100 -n 900       > fly.pl
//	kbgen -kind warren -scale 0.001           > warren.pl
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"clare/internal/core"
	"clare/internal/term"
	"clare/internal/workload"
)

func main() {
	kind := flag.String("kind", "family", "family|relation|structured|rules|warren")
	n := flag.Int("n", 1000, "fact count (couples for family)")
	same := flag.Int("same", 8, "family: every k-th couple shares a name")
	domain := flag.Int("domain", 100, "relation: distinct key values")
	arity := flag.Int("arity", 3, "relation: predicate arity")
	rules := flag.Int("rules", 50, "rules: rule count (facts come from -n)")
	scale := flag.Float64("scale", 0.001, "warren: fraction of the full 3k/30k/3M sizing")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	emit := func(cls []core.ClauseTerm) {
		for _, c := range cls {
			if c.Body == nil || term.Equal(c.Body, term.Atom("true")) {
				fmt.Fprintf(out, "%s.\n", c.Head)
			} else {
				fmt.Fprintf(out, "%s :- %s.\n", c.Head, c.Body)
			}
		}
	}

	switch *kind {
	case "family":
		emit(workload.Family{Couples: *n, SameEvery: *same}.Clauses())
	case "relation":
		emit(workload.Relation{Name: "rel", Facts: *n, Domain: *domain, Arity: *arity, Seed: *seed}.Clauses())
	case "structured":
		emit(workload.Structured{Name: "shape", Facts: *n, DeepVariety: 4, Seed: *seed}.Clauses())
	case "rules":
		emit(workload.Rules{Name: "mixed", Rules: *rules, Facts: *n, Seed: *seed}.Clauses())
	case "warren":
		w := workload.WarrenKB{Scale: *scale, Seed: *seed}
		p, r, f := w.Dimensions()
		fmt.Fprintf(out, "%% warren KB at scale %g: %d predicates, %d rules, %d facts\n", *scale, p, r, f)
		for _, pred := range w.Generate() {
			emit(pred.Clauses)
		}
	default:
		fmt.Fprintf(os.Stderr, "kbgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
}
