// Command metricslint validates a Prometheus text-format (0.0.4)
// exposition: unique HELP/TYPE per metric, no duplicate series, counter
// names ending in _total. CI scrapes the smoke-test crsd's /metrics
// through it so metric-name drift fails the build.
//
// Usage:
//
//	metricslint < metrics.txt
//	metricslint -url http://127.0.0.1:7072/metrics
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"clare/internal/telemetry"
)

func main() {
	url := flag.String("url", "", "scrape this /metrics endpoint instead of reading stdin")
	flag.Parse()

	var in io.Reader = os.Stdin
	if *url != "" {
		c := &http.Client{Timeout: 10 * time.Second}
		resp, err := c.Get(*url)
		if err != nil {
			fatal("%v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fatal("%s: %s", *url, resp.Status)
		}
		in = resp.Body
	}

	problems, err := telemetry.LintPrometheus(in)
	if err != nil {
		fatal("%v", err)
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fatal("%d problem(s)", len(problems))
	}
	fmt.Println("metricslint: ok")
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "metricslint: "+format+"\n", args...)
	os.Exit(1)
}
