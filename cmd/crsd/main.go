// Command crsd is the Clause Retrieval Server daemon: it loads one or
// more predicate files into a CLARE retriever and serves the CRS wire
// protocol over TCP for multiple concurrent clients (§2.2).
//
// Usage:
//
//	crsd -addr :7071 -admin :7072 family.pl emp.pl
//
// Each file holds the clauses of one predicate; its base name becomes the
// module name. A compiled store (kbc output, including a shard slice
// from kbc -shards) loads without re-parsing:
//
//	crsd -addr :7071 -kb build/shard-0.clare
//
// The admin listener serves /metrics (Prometheus text
// format), /trace?n=K (recent retrieval span trees as JSON lines) and
// /debug/pprof; -admin "" disables it. SIGINT/SIGTERM drain the server:
// new connections are refused and in-flight sessions get -drain to
// finish before being force-closed.
//
// Chaos testing: the repeatable -fault flag arms deterministic fault
// injection (seeded by -fault-seed), e.g.
//
//	crsd -boards 4 -fault fs2.match@0=0.5 -fault disk.index=1/100 family.pl
//
// Board health and degradation tallies are visible in the wire STATS
// reply (boards.*, degraded, retries, faults) and as
// clare_boards_tripped / clare_degraded_retrievals_total etc. on
// /metrics.
//
// -engine native swaps the cycle-accurate hardware simulation for the
// vectorized host engine (same candidates, wall-clock as the first-class
// metric); the active engine is visible as the engine.native STATS key.
// -scan-workers partitions each native FS1 columnar scan across that
// many goroutines (results identical at any count; scan.workers in
// STATS), and -mmap=true (the default) maps -kb read-only so predicates
// decode zero-copy out of the page cache — cold start becomes page-in
// instead of re-decode, with store.mapped=1 in STATS. Stores that
// predate the mappable format, or platforms without mmap, silently fall
// back to the heap load.
//
// -planner arms the adaptive cost-based mode planner: auto-mode
// retrievals pick software/fs1/fs2/fs1+fs2 per query from learned
// per-predicate statistics instead of the static heuristic, shared-
// variable goals automatically skip the codeword filter (§2.1), and the
// decision shows up in EXPLAIN (plan.*) and STATS (plan.*). The
// statistics store snapshots to -planner-stats (default <kb>.plan next
// to -kb) on drain and reloads on boot. -latency-window resizes the
// per-predicate latency sample windows behind the admin /top quantiles
// (latency.window in STATS).
//
// Observability: the daemon self-diagnoses. -flight sizes the
// always-on flight recorder (one compact record per retrieval, dumped
// by the FLIGHT wire verb, /flight admin endpoint and crsctl -flight;
// -flight-snap names the file the ring snapshots to on SIGTERM, panic
// and SLO breach). -slow-ms and -slow-p99x arm the slow-query log:
// a retrieval over the absolute threshold, or over N× its predicate's
// rolling P99, gets an automatic capture-side EXPLAIN re-run whose
// profile lands in the SLOWLOG ring (-slow-log entries, captures per
// predicate spaced -slow-gap apart). -slo p99=5ms,err=0.1% arms SLO
// burn-rate accounting over short and long windows (slo.* STATS keys,
// clare_slo_* metrics, /slo endpoint). -log-level and -log-json shape
// the structured event log on stdout.
//
// Durable writes: -wal-dir enables the write-ahead log — WRITE
// (autocommit assert/retract) and transaction commits append to a
// segmented log before they apply, and a restart replays the log over
// the loaded store. -wal-fsync picks the flush policy (always, never,
// or an interval), -replica serves read-only (writes arrive only as
// REPL records from the shard primary), and -follow pulls a primary's
// log over SYNC for catch-up without a pushing router:
//
//	crsd -addr :7473 -kb build/shard-0.clare -wal-dir wal/s0r1 -replica -follow 127.0.0.1:7471
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"clare/internal/core"
	"clare/internal/crs"
	"clare/internal/fault"
	"clare/internal/plan"
	"clare/internal/plfile"
	"clare/internal/telemetry"
	"clare/internal/wal"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7071", "listen address")
	admin := flag.String("admin", "", "admin HTTP address for /metrics, /trace and /debug/pprof (empty disables)")
	boards := flag.Int("boards", 1, "FS2 board/drive units in the simulated chassis (concurrent retrievals)")
	engine := flag.String("engine", "sim", "retrieval engine: sim (cycle-accurate) or native (vectorized)")
	drain := flag.Duration("drain", 10*time.Second, "shutdown grace period for in-flight sessions")
	traces := flag.Int("traces", telemetry.DefaultTraceRing, "retrieval traces kept for /trace")
	traceBuf := flag.Int("trace-buf", 0, "trace ring capacity (overrides -traces when set)")
	var faultSpecs multiFlag
	flag.Var(&faultSpecs, "fault", "arm a fault-injection rule, site[@key]=P or site[@key]=1/N[,limit=L] (repeatable)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the fault-injection schedule")
	kb := flag.String("kb", "", "compiled knowledge-base store to load (kbc output; a shard slice works unchanged)")
	planner := flag.Bool("planner", false, "arm the adaptive cost-based mode planner for auto-mode retrievals")
	plannerStats := flag.String("planner-stats", "", "planner statistics snapshot path (default: <kb>.plan next to -kb; no snapshot without -kb)")
	latWindow := flag.Int("latency-window", 0, "per-predicate latency samples kept for quantiles (0 = default)")
	useMmap := flag.Bool("mmap", true, "map -kb read-only and decode zero-copy (falls back to a heap load when the store or platform does not support it)")
	scanWorkers := flag.Int("scan-workers", 0, "goroutines per native FS1 columnar scan (0 = GOMAXPROCS, negative = serial; results are identical at any count)")
	walDir := flag.String("wal-dir", "", "write-ahead log directory: enables the durable write path (WRITE/SYNC/REPL) and replays the log over the loaded store at startup")
	walFsync := flag.String("wal-fsync", "always", "WAL fsync policy: always, never, or a flush interval like 50ms")
	replica := flag.Bool("replica", false, "serve as a read-only replica: client writes are rejected, only REPL applies records")
	follow := flag.String("follow", "", "primary address to pull the log from (replica catch-up without a pushing router)")
	followShard := flag.Int("follow-shard", 0, "shard index named in SYNC requests to -follow")
	followEvery := flag.Duration("follow-interval", time.Second, "poll period for -follow")
	flightN := flag.Int("flight", telemetry.DefaultFlightSize, "flight-recorder ring size: per-retrieval records kept for FLIGHT//flight (0 disables)")
	flightSnap := flag.String("flight-snap", "", "file the flight ring snapshots to on SIGTERM, panic and SLO breach (empty disables snapshots)")
	slowMs := flag.Float64("slow-ms", 0, "absolute slow-query threshold in milliseconds: slower retrievals get an automatic EXPLAIN capture (0 disables)")
	slowP99x := flag.Float64("slow-p99x", 0, "adaptive slow-query threshold: N times the predicate's rolling P99 (0 disables; with -slow-ms the smaller threshold wins)")
	slowLogN := flag.Int("slow-log", telemetry.DefaultSlowLogSize, "slow-query captures kept for SLOWLOG//slowlog")
	slowGap := flag.Duration("slow-gap", telemetry.DefaultSlowGap, "minimum spacing between captures of the same predicate")
	sloSpec := flag.String("slo", "", "service-level objective, e.g. p99=5ms,err=0.1% (arms burn-rate accounting: slo.* STATS, clare_slo_* metrics, /slo)")
	logLevel := flag.String("log-level", "info", "event-log level: debug, info, warn or error")
	logJSON := flag.Bool("log-json", false, "emit the event log as JSON objects instead of logfmt lines")
	flag.Parse()
	if flag.NArg() == 0 && *kb == "" {
		fmt.Fprintln(os.Stderr, "usage: crsd [-addr host:port] [-admin host:port] [-boards n] [-engine sim|native] [-kb store.clare] predicate.pl ...")
		os.Exit(2)
	}

	logg := telemetry.NewLogger(os.Stdout, telemetry.ParseLevel(*logLevel), *logJSON).With("daemon", "crsd")

	cfg := core.DefaultConfig()
	cfg.Boards = *boards
	eng, err := core.ParseEngine(*engine)
	if err != nil {
		fatal("%v", err)
	}
	cfg.Engine = eng
	cfg.Metrics = telemetry.NewRegistry()
	cfg.Tracer = telemetry.NewTracer(*traces)
	if *traceBuf > 0 {
		cfg.Tracer.Resize(*traceBuf)
	}
	if len(faultSpecs) > 0 {
		inj := fault.New(*faultSeed)
		for _, spec := range faultSpecs {
			rule, err := fault.ParseRule(spec)
			if err != nil {
				fatal("%v", err)
			}
			if !fault.IsKnownSite(rule.Site) {
				fmt.Fprintf(os.Stderr, "crsd: warning: -fault %s names unknown site %q (nothing probes it)\n", spec, rule.Site)
			}
			inj.Add(rule)
		}
		cfg.Faults = inj
		logg.Info("fault injection armed", "rules", strings.Join(faultSpecs, " "), "seed", *faultSeed)
	}
	cfg.ScanWorkers = *scanWorkers
	// The recorder must be armed before the retriever is built — the
	// retriever copies its Config at construction.
	var flight *telemetry.FlightRecorder
	if *flightN > 0 {
		flight = telemetry.NewFlightRecorder(*flightN)
		cfg.Flight = flight
	}
	var pl *plan.Planner
	plPath := *plannerStats
	if *planner {
		pl = plan.New(plan.Config{})
		if plPath == "" && *kb != "" {
			plPath = plan.DefaultSnapshotPath(*kb)
		}
		if plPath != "" {
			if err := pl.Load(plPath); err != nil {
				fatal("planner stats %s: %v", plPath, err)
			}
			logg.Info("planner armed", "predicates", pl.Predicates(), "stats", plPath)
		} else {
			logg.Info("planner armed", "stats", "memory-only")
		}
		cfg.Planner = pl
	} else if plPath != "" {
		fatal("-planner-stats needs -planner")
	}
	var r *core.Retriever
	if *kb != "" {
		start := time.Now()
		var mapped bool
		if *useMmap {
			r, mapped, err = core.MapRetriever(cfg, *kb)
		} else {
			var f *os.File
			if f, err = os.Open(*kb); err == nil {
				r, err = core.LoadRetriever(cfg, f)
				f.Close()
			}
		}
		if err != nil {
			fatal("loading %s: %v", *kb, err)
		}
		store := "heap"
		if mapped {
			store = "mmap"
		}
		logg.Info("store loaded", "path", *kb, "backing", store, "cold_start", time.Since(start).Round(time.Microsecond))
	} else {
		r, err = core.New(cfg)
		if err != nil {
			fatal("%v", err)
		}
	}
	srv := crs.NewServer(r)
	if *latWindow > 0 {
		srv.SetLatencyWindow(*latWindow)
	}
	srv.SetLogger(logg)
	srv.SetFlight(flight, *flightSnap)
	if *slowMs > 0 || *slowP99x > 0 {
		srv.SetSlowLog(telemetry.NewSlowQueryLog(*slowLogN, *slowGap),
			time.Duration(*slowMs*float64(time.Millisecond)), *slowP99x)
		logg.Info("slow-query log armed", "abs_ms", *slowMs, "p99x", *slowP99x, "entries", *slowLogN)
	} else if *slowLogN != telemetry.DefaultSlowLogSize {
		fatal("-slow-log needs -slow-ms or -slow-p99x")
	}
	var sloT *telemetry.SLOTracker
	if *sloSpec != "" {
		slo, err := telemetry.ParseSLO(*sloSpec)
		if err != nil {
			fatal("%v", err)
		}
		sloT = telemetry.NewSLOTracker(slo)
		sloT.Instrument(cfg.Metrics)
		sloT.OnBreach = func(burn float64) {
			// A fast burn is exactly the moment the black box matters:
			// snapshot it while the bad window is still in the ring.
			logg.Error("slo breach", "burn", fmt.Sprintf("%.1f", burn), "objective", slo.String())
			if err := srv.SnapshotFlight(); err != nil {
				logg.Error("flight snapshot failed", "error", err)
			}
		}
		srv.SetSLO(sloT)
		logg.Info("slo armed", "objective", slo.String())
	}
	if *kb != "" {
		// Register the store's predicates with the server (Load only sees
		// the .pl arguments).
		if err := srv.Adopt(); err != nil {
			fatal("adopting %s: %v", *kb, err)
		}
		logg.Info("store adopted", "path", *kb, "predicates", len(r.Predicates()))
	}
	for _, file := range flag.Args() {
		clauses, err := plfile.ReadFile(file)
		if err != nil {
			fatal("%v", err)
		}
		module := strings.TrimSuffix(filepath.Base(file), filepath.Ext(file))
		if err := srv.Load(module, clauses); err != nil {
			fatal("loading %s: %v", file, err)
		}
		logg.Info("module loaded", "file", file, "clauses", len(clauses), "module", module)
	}

	if *walDir != "" {
		policy, err := wal.ParseFsyncPolicy(*walFsync)
		if err != nil {
			fatal("%v", err)
		}
		wlog, err := wal.Open(*walDir, wal.Options{
			Fsync:   policy,
			Faults:  cfg.Faults,
			Metrics: cfg.Metrics,
		})
		if err != nil {
			fatal("wal: %v", err)
		}
		defer wlog.Close()
		srv.AttachWAL(wlog)
		n, err := srv.Recover()
		if err != nil {
			fatal("wal recovery: %v", err)
		}
		logg.Info("wal recovered", "dir", *walDir, "records", n, "seq", wlog.LastSeq(), "fsync", policy)
	} else if *walFsync != "always" {
		fatal("-wal-fsync needs -wal-dir")
	}
	if *replica {
		srv.SetReadOnly(true)
		logg.Info("serving read-only", "replica", true)
	}
	if *follow != "" {
		if *walDir == "" {
			fatal("-follow needs -wal-dir (the pulled log must land somewhere durable)")
		}
		fc, err := crs.DialTimeout(*follow, 5*time.Second)
		if err != nil {
			fatal("dialing -follow primary %s: %v", *follow, err)
		}
		defer fc.Close()
		var followMu sync.Mutex
		fetch := func(from uint64, max int) ([]wal.Record, uint64, error) {
			followMu.Lock()
			defer followMu.Unlock()
			recs, last, err := fc.SyncLog(*followShard, from)
			return recs, last, err
		}
		follower := wal.NewFollower(fetch, srv.ApplyReplicated, srv.AppliedSeq,
			wal.FollowerConfig{Interval: *followEvery})
		if n, err := follower.CatchUp(); err != nil {
			logg.Warn("follow catch-up failed; polling retries", "primary", *follow, "error", err)
		} else {
			logg.Info("follow caught up", "primary", *follow, "records", n, "applied_seq", srv.AppliedSeq())
		}
		follower.Run()
		defer follower.Close()
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("%v", err)
	}
	logg.Info("listening", "addr", l.Addr())

	var adminSrv *http.Server
	if *admin != "" {
		al, err := net.Listen("tcp", *admin)
		if err != nil {
			fatal("admin: %v", err)
		}
		adminSrv = &http.Server{Handler: telemetry.NewAdminMux(telemetry.AdminConfig{
			Registry: cfg.Metrics,
			Tracer:   cfg.Tracer,
			Latency:  srv.Latency(),
			Flight:   flight,
			SLO:      sloT,
			SlowLog:  srv.SlowLog(),
		})}
		logg.Info("admin listening", "url", fmt.Sprintf("http://%s/metrics", al.Addr()))
		go func() {
			if err := adminSrv.Serve(al); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "crsd: admin: %v\n", err)
			}
		}()
	}

	// Serve until the listener closes; a signal triggers the drain.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	select {
	case err := <-serveErr:
		fatal("serve: %v", err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	logg.Info("draining")
	l.Close()
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		logg.Warn("drain expired; connections force-closed", "error", err)
	}
	if adminSrv != nil {
		adminSrv.Close()
	}
	<-serveErr // Serve returns once the listener is closed and handlers drain
	if *flightSnap != "" {
		if err := srv.SnapshotFlight(); err != nil {
			logg.Error("flight snapshot failed", "path", *flightSnap, "error", err)
		} else {
			logg.Info("flight snapshot written", "path", *flightSnap, "recorded", flight.Recorded())
		}
	}
	if pl != nil && plPath != "" {
		if err := pl.Save(plPath); err != nil {
			logg.Error("planner stats save failed", "path", plPath, "error", err)
		} else {
			logg.Info("planner stats saved", "path", plPath, "predicates", pl.Predicates())
		}
	}
	logg.Info("bye")
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "crsd: "+format+"\n", args...)
	os.Exit(1)
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}
