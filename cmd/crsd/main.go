// Command crsd is the Clause Retrieval Server daemon: it loads one or
// more predicate files into a CLARE retriever and serves the CRS wire
// protocol over TCP for multiple concurrent clients (§2.2).
//
// Usage:
//
//	crsd -addr :7071 family.pl emp.pl
//
// Each file holds the clauses of one predicate; its base name becomes the
// module name.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"

	"clare/internal/core"
	"clare/internal/crs"
	"clare/internal/plfile"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7071", "listen address")
	boards := flag.Int("boards", 1, "FS2 board/drive units in the simulated chassis (concurrent retrievals)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: crsd [-addr host:port] [-boards n] predicate.pl ...")
		os.Exit(2)
	}

	cfg := core.DefaultConfig()
	cfg.Boards = *boards
	r, err := core.New(cfg)
	if err != nil {
		fatal("%v", err)
	}
	srv := crs.NewServer(r)
	for _, file := range flag.Args() {
		clauses, err := plfile.ReadFile(file)
		if err != nil {
			fatal("%v", err)
		}
		module := strings.TrimSuffix(filepath.Base(file), filepath.Ext(file))
		if err := srv.Load(module, clauses); err != nil {
			fatal("loading %s: %v", file, err)
		}
		fmt.Printf("loaded %s: %d clauses into module %s\n", file, len(clauses), module)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("crsd listening on %s\n", l.Addr())
	if err := srv.Serve(l); err != nil {
		fatal("serve: %v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "crsd: "+format+"\n", args...)
	os.Exit(1)
}
