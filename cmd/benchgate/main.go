// Command benchgate is the in-tree perf-regression gate: it compares a
// fresh clarebench -json run against the last committed BENCH_*.json
// baseline and fails (exit 1) when a throughput metric regresses beyond
// its threshold.
//
// Usage:
//
//	go run ./cmd/clarebench -exp CONC,NATIVE -json -json-out /tmp/fresh.json
//	go run ./cmd/benchgate -fresh /tmp/fresh.json
//
// Only throughput metrics gate. Simulated throughput (unit "queries/s")
// is deterministic — same code, same numbers — so it gates tight
// (-threshold, default 10%). Wall-clock throughput (units
// "wall-queries/s" and "wall-writes/s") varies with the machine, so it
// gates loose (-wall-threshold, default 50%) and is meant to catch
// order-of-magnitude collapses of the native fast path or the durable
// write path, not noise. Metrics present on only
// one side are reported but never fail the gate (experiments come and
// go); a missing baseline is a clean pass so the gate can bootstrap on
// the commit that introduces it.
//
// Two absolute floors exist on top of the baseline comparison. The
// partitioned columnar scan's NATIVE/par_speedup_w8 metric must reach
// -par-speedup-floor (default 1.6x over serial) — but only when the
// fresh run's own gomaxprocs header is at least 8, because on a host
// with fewer cores the configured workers cannot run simultaneously and
// the honest curve hovers at or below 1x. On small hosts the floor is
// reported as skipped, never failed. And the adaptive planner's
// PLAN/plan_vs_best metric must reach -plan-floor (default 0.9x the
// best static mode): the planner is allowed a small learning tax but
// must never lose badly to a mode a static config could have pinned.
// The planner scoreboard is simulated cost, so this floor is
// deterministic and applies on any host. The observability stack's
// OBS/recorder_ratio metric (recorder-on over recorder-off wall
// throughput; A/B-interleaved rounds, best round taken, since noise
// only ever inflates apparent overhead) must reach -obs-floor (default
// 0.95x): the flight recorder, slow-query detection, and SLO
// accounting together may cost at most 5% — the price of leaving
// diagnosis on in production.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// report mirrors the fields of clarebench's benchReport that the gate
// reads; unknown fields are ignored so the formats can evolve apart.
type report struct {
	Generated  string `json:"generated"`
	GitSHA     string `json:"git_sha"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Metrics    []struct {
		Experiment string  `json:"experiment"`
		Name       string  `json:"name"`
		Value      float64 `json:"value"`
		Unit       string  `json:"unit"`
	} `json:"metrics"`
}

func main() {
	fresh := flag.String("fresh", "", "fresh clarebench -json output to gate (required)")
	baseline := flag.String("baseline", "", "baseline BENCH_*.json (default: latest committed in -dir)")
	dir := flag.String("dir", ".", "directory holding committed BENCH_*.json baselines")
	threshold := flag.Float64("threshold", 0.10, "max allowed regression for simulated throughput (queries/s)")
	wallThreshold := flag.Float64("wall-threshold", 0.50, "max allowed regression for wall-clock throughput (wall-queries/s)")
	parFloor := flag.Float64("par-speedup-floor", 1.6, "min NATIVE/par_speedup_w8 when the fresh run had gomaxprocs >= 8")
	planFloorVal := flag.Float64("plan-floor", 0.9, "min PLAN/plan_vs_best — the planner vs the best static mode")
	obsFloorVal := flag.Float64("obs-floor", 0.95, "min OBS/recorder_ratio — recorder-on vs recorder-off throughput")
	flag.Parse()
	if *fresh == "" {
		fmt.Fprintln(os.Stderr, "usage: benchgate -fresh fresh.json [-baseline BENCH_x.json] [-dir .] [-threshold 0.10] [-wall-threshold 0.50]")
		os.Exit(2)
	}

	cur, err := load(*fresh)
	if err != nil {
		fatal("%v", err)
	}
	basePath := *baseline
	if basePath == "" {
		if basePath, err = latestBaseline(*dir, *fresh); err != nil {
			fatal("%v", err)
		}
		if basePath == "" {
			fmt.Printf("benchgate: no committed BENCH_*.json under %s — nothing to gate against (pass)\n", *dir)
			return
		}
	}
	base, err := load(basePath)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("benchgate: %s (fresh) vs %s (baseline %s, generated %s)\n",
		*fresh, basePath, orDash(base.GitSHA), base.Generated)
	failures, compared := gate(os.Stdout, cur, base, *threshold, *wallThreshold)
	if !speedupFloor(os.Stdout, cur, *parFloor) {
		failures++
	}
	if !planFloor(os.Stdout, cur, *planFloorVal) {
		failures++
	}
	if !obsFloor(os.Stdout, cur, *obsFloorVal) {
		failures++
	}
	if failures > 0 {
		fatal("%d of %d throughput metrics regressed beyond threshold", failures, compared)
	}
	fmt.Printf("benchgate: %d throughput metrics within threshold\n", compared)
}

// speedupFloor enforces the absolute parallel-scan floor on the fresh
// run: NATIVE/par_speedup_w8 must reach floor when the run's gomaxprocs
// header is >= 8. On smaller hosts the floor is skipped — 8 configured
// scan workers cannot run simultaneously on fewer cores, so the honest
// measurement sits at or below 1x there.
func speedupFloor(w io.Writer, cur *report, floor float64) (ok bool) {
	for _, m := range cur.Metrics {
		if m.Experiment != "NATIVE" || m.Name != "par_speedup_w8" {
			continue
		}
		if cur.GOMAXPROCS < 8 {
			fmt.Fprintf(w, "  SKIP  NATIVE/par_speedup_w8 = %.2fx (gomaxprocs %d < 8, floor %.1fx not applicable)\n",
				m.Value, cur.GOMAXPROCS, floor)
			return true
		}
		if m.Value < floor {
			fmt.Fprintf(w, "  FAIL  NATIVE/par_speedup_w8 = %.2fx < floor %.1fx (gomaxprocs %d)\n",
				m.Value, floor, cur.GOMAXPROCS)
			return false
		}
		fmt.Fprintf(w, "  ok    NATIVE/par_speedup_w8 = %.2fx >= floor %.1fx (gomaxprocs %d)\n",
			m.Value, floor, cur.GOMAXPROCS)
		return true
	}
	return true
}

// planFloor enforces the absolute adaptive-planner floor on the fresh
// run: PLAN/plan_vs_best (planner throughput over the best static
// mode's, on the mixed workload) must reach floor. The scoreboard is
// simulated cost — deterministic on any host — so there is no
// small-host skip.
func planFloor(w io.Writer, cur *report, floor float64) (ok bool) {
	for _, m := range cur.Metrics {
		if m.Experiment != "PLAN" || m.Name != "plan_vs_best" {
			continue
		}
		if m.Value < floor {
			fmt.Fprintf(w, "  FAIL  PLAN/plan_vs_best = %.2fx < floor %.1fx\n", m.Value, floor)
			return false
		}
		fmt.Fprintf(w, "  ok    PLAN/plan_vs_best = %.2fx >= floor %.1fx\n", m.Value, floor)
		return true
	}
	return true
}

// obsFloor enforces the absolute observability-overhead floor on the
// fresh run: OBS/recorder_ratio (recorder-on over recorder-off wall
// throughput) must reach floor. The two sides run A/B-interleaved on
// the same host, so the ratio is robust to machine speed and there is
// no small-host skip.
func obsFloor(w io.Writer, cur *report, floor float64) (ok bool) {
	for _, m := range cur.Metrics {
		if m.Experiment != "OBS" || m.Name != "recorder_ratio" {
			continue
		}
		if m.Value < floor {
			fmt.Fprintf(w, "  FAIL  OBS/recorder_ratio = %.3fx < floor %.2fx\n", m.Value, floor)
			return false
		}
		fmt.Fprintf(w, "  ok    OBS/recorder_ratio = %.3fx >= floor %.2fx\n", m.Value, floor)
		return true
	}
	return true
}

// gate compares the fresh run's throughput metrics against the baseline,
// printing one verdict line per metric, and reports how many regressed
// beyond their threshold.
func gate(w io.Writer, cur, base *report, threshold, wallThreshold float64) (failures, compared int) {
	type key struct{ exp, name string }
	baseVals := map[key]float64{}
	var baseOrder []key
	for _, m := range base.Metrics {
		if gated(m.Unit) {
			baseVals[key{m.Experiment, m.Name}] = m.Value
			baseOrder = append(baseOrder, key{m.Experiment, m.Name})
		}
	}
	for _, m := range cur.Metrics {
		if !gated(m.Unit) {
			continue
		}
		want, ok := baseVals[key{m.Experiment, m.Name}]
		if !ok {
			fmt.Fprintf(w, "  NEW   %s/%s = %.1f %s (no baseline)\n", m.Experiment, m.Name, m.Value, m.Unit)
			continue
		}
		delete(baseVals, key{m.Experiment, m.Name})
		compared++
		limit := threshold
		if m.Unit == "wall-queries/s" || m.Unit == "wall-writes/s" {
			limit = wallThreshold
		}
		drop := 0.0
		if want > 0 {
			drop = (want - m.Value) / want
		}
		verdict := "ok"
		if drop > limit {
			verdict = "FAIL"
			failures++
		}
		fmt.Fprintf(w, "  %-5s %s/%s = %.1f %s vs %.1f (%+.1f%%, limit -%.0f%%)\n",
			verdict, m.Experiment, m.Name, m.Value, m.Unit, want, -drop*100, limit*100)
	}
	for _, k := range baseOrder {
		if _, ok := baseVals[k]; ok {
			fmt.Fprintf(w, "  GONE  %s/%s (in baseline only)\n", k.exp, k.name)
		}
	}
	return failures, compared
}

// gated reports whether a metric's unit marks it as a throughput number
// the gate compares. Wall-clock units (wall-queries/s, wall-writes/s)
// gate at the loose -wall-threshold.
func gated(unit string) bool {
	return unit == "queries/s" || unit == "wall-queries/s" || unit == "wall-writes/s"
}

// latestBaseline picks the committed BENCH_*.json with the largest
// generated timestamp (RFC3339 sorts lexically), skipping the fresh file
// itself; "" when none exists.
func latestBaseline(dir, fresh string) (string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	freshAbs, _ := filepath.Abs(fresh)
	best, bestGen := "", ""
	for _, p := range paths {
		if abs, _ := filepath.Abs(p); abs == freshAbs {
			continue
		}
		r, err := load(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: warning: skipping %s: %v\n", p, err)
			continue
		}
		if r.Generated > bestGen {
			best, bestGen = p, r.Generated
		}
	}
	return best, nil
}

func load(path string) (*report, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(blob, &r); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &r, nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
