package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func rep(gen string, metrics ...[4]string) *report {
	r := &report{Generated: gen}
	for _, m := range metrics {
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			panic(err)
		}
		r.Metrics = append(r.Metrics, struct {
			Experiment string  `json:"experiment"`
			Name       string  `json:"name"`
			Value      float64 `json:"value"`
			Unit       string  `json:"unit"`
		}{m[0], m[1], v, m[3]})
	}
	return r
}

func TestGateThresholds(t *testing.T) {
	base := rep("2026-01-01T00:00:00Z",
		[4]string{"CONC", "boards1_clients1_sim_qps", "100", "queries/s"},
		[4]string{"NATIVE", "native_wall_qps", "1000", "wall-queries/s"},
		[4]string{"NATIVE", "divergences", "0", "count"},
		[4]string{"OLD", "gone_qps", "5", "queries/s"})
	for _, tc := range []struct {
		name         string
		sim, wall    string
		wantFailures int
	}{
		{"within", "95", "900", 0},                // -5% sim, -10% wall: both inside
		{"sim regression", "80", "900", 1},        // -20% sim > 10% limit
		{"wall regression", "95", "400", 1},       // -60% wall > 50% limit
		{"wall noise tolerated", "100", "600", 0}, // -40% wall inside the loose limit
		{"improvement passes", "200", "20000", 0}, // faster never fails
		{"both regressed", "10", "10", 2},         //
	} {
		cur := rep("2026-02-01T00:00:00Z",
			[4]string{"CONC", "boards1_clients1_sim_qps", tc.sim, "queries/s"},
			[4]string{"NATIVE", "native_wall_qps", tc.wall, "wall-queries/s"},
			[4]string{"NATIVE", "divergences", "0", "count"},
			[4]string{"NEW", "fresh_qps", "7", "queries/s"})
		var out strings.Builder
		failures, compared := gate(&out, cur, base, 0.10, 0.50)
		if failures != tc.wantFailures {
			t.Errorf("%s: failures = %d, want %d\n%s", tc.name, failures, tc.wantFailures, out.String())
		}
		if compared != 2 {
			t.Errorf("%s: compared = %d, want 2 (count metrics must not gate)", tc.name, compared)
		}
		if !strings.Contains(out.String(), "NEW   NEW/fresh_qps") {
			t.Errorf("%s: missing NEW line:\n%s", tc.name, out.String())
		}
		if !strings.Contains(out.String(), "GONE  OLD/gone_qps") {
			t.Errorf("%s: missing GONE line:\n%s", tc.name, out.String())
		}
	}
}

func TestSpeedupFloor(t *testing.T) {
	for _, tc := range []struct {
		name     string
		procs    int
		speedup  string // "" = metric absent
		wantOK   bool
		wantLine string
	}{
		{"big host above floor", 8, "2.1", true, "ok    NATIVE/par_speedup_w8"},
		{"big host below floor", 16, "1.1", false, "FAIL  NATIVE/par_speedup_w8"},
		{"small host skips", 1, "0.76", true, "SKIP  NATIVE/par_speedup_w8"},
		{"metric absent passes", 8, "", true, ""},
	} {
		cur := rep("2026-02-01T00:00:00Z")
		cur.GOMAXPROCS = tc.procs
		if tc.speedup != "" {
			cur = rep("2026-02-01T00:00:00Z",
				[4]string{"NATIVE", "par_speedup_w8", tc.speedup, "x"})
			cur.GOMAXPROCS = tc.procs
		}
		var out strings.Builder
		if ok := speedupFloor(&out, cur, 1.6); ok != tc.wantOK {
			t.Errorf("%s: ok = %v, want %v\n%s", tc.name, ok, tc.wantOK, out.String())
		}
		if tc.wantLine != "" && !strings.Contains(out.String(), tc.wantLine) {
			t.Errorf("%s: missing %q:\n%s", tc.name, tc.wantLine, out.String())
		}
		if tc.wantLine == "" && out.Len() != 0 {
			t.Errorf("%s: unexpected output:\n%s", tc.name, out.String())
		}
	}
}

func TestPlanFloor(t *testing.T) {
	for _, tc := range []struct {
		name     string
		ratio    string // "" = metric absent
		wantOK   bool
		wantLine string
	}{
		{"above floor", "1.42", true, "ok    PLAN/plan_vs_best"},
		{"at floor", "0.9", true, "ok    PLAN/plan_vs_best"},
		{"below floor", "0.71", false, "FAIL  PLAN/plan_vs_best"},
		{"metric absent passes", "", true, ""},
	} {
		cur := rep("2026-02-01T00:00:00Z")
		if tc.ratio != "" {
			cur = rep("2026-02-01T00:00:00Z",
				[4]string{"PLAN", "plan_vs_best", tc.ratio, "x"})
		}
		var out strings.Builder
		if ok := planFloor(&out, cur, 0.9); ok != tc.wantOK {
			t.Errorf("%s: ok = %v, want %v\n%s", tc.name, ok, tc.wantOK, out.String())
		}
		if tc.wantLine != "" && !strings.Contains(out.String(), tc.wantLine) {
			t.Errorf("%s: missing %q:\n%s", tc.name, tc.wantLine, out.String())
		}
		if tc.wantLine == "" && out.Len() != 0 {
			t.Errorf("%s: unexpected output:\n%s", tc.name, out.String())
		}
	}
}

func TestLatestBaseline(t *testing.T) {
	dir := t.TempDir()
	write := func(name, gen string) string {
		p := filepath.Join(dir, name)
		blob := `{"generated": "` + gen + `", "metrics": []}`
		if err := os.WriteFile(p, []byte(blob), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	write("BENCH_old.json", "2026-01-01T00:00:00Z")
	newest := write("BENCH_new.json", "2026-03-01T00:00:00Z")
	fresh := write("BENCH_fresh.json", "2026-04-01T00:00:00Z")

	got, err := latestBaseline(dir, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if got != newest {
		t.Errorf("latestBaseline = %q, want %q (fresh file must be excluded)", got, newest)
	}

	empty := t.TempDir()
	got, err = latestBaseline(empty, fresh)
	if err != nil || got != "" {
		t.Errorf("latestBaseline(empty) = %q, %v, want \"\", nil", got, err)
	}
}
