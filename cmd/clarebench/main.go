// Command clarebench regenerates every table and figure of the paper's
// evaluation from the simulation, printing paper-vs-measured tables.
// EXPERIMENTS.md is this program's output, recorded.
//
// Usage:
//
//	clarebench                 # run every experiment
//	clarebench -exp T1         # one experiment: T1 F1 F6..F12 TA1 R1 R2 D1 D2 M1 W1 L15 CONC NATIVE AB1 AB2 FLT CLUSTER WRITE PLAN OBS
//	clarebench -exp CONC,NATIVE # a comma-separated subset
//	clarebench -json           # also write machine-readable BENCH_<gitsha>.json
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strings"
)

type experiment struct {
	id    string
	title string
	run   func() error
}

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all'")
	jsonOut := flag.Bool("json", false, "write recorded metrics to BENCH_<gitsha>.json")
	jsonPath := flag.String("json-out", "", "explicit output path for -json (overrides the default name)")
	flag.Parse()

	exps := []experiment{
		{"T1", "Table 1 — execution times of the FS2 hardware functions", expT1},
		{"F6-F12", "Figures 6–12 — per-route timing calculations", expFigures},
		{"F1", "Figure 1 — partial test unification algorithm behaviour", expF1},
		{"TA1", "Table A1 — PIF data-type scheme conformance", expTA1},
		{"R1", "§4 — FS2 worst-case rate vs disk delivery rate", expR1},
		{"R2", "§2.1/§4 — FS1 scan rate and secondary-file size ratio", expR2},
		{"D1", "§2.1 — false-drop sources: truncation and codeword width", expD1},
		{"D2", "§2.1 — the shared-variable pathology (married_couple(S,S))", expD2},
		{"M1", "§2.2 — the four CRS search modes", expM1},
		{"W1", "§1 — Warren-scale knowledge base sweep", expW1},
		{"CONC", "Multi-board chassis — concurrent retrieval scaling", expCONC},
		{"NATIVE", "Native vectorized engine vs simulation — wall-clock throughput", expNATIVE},
		{"L15", "§2.2 — matching levels 1–5 selectivity/cost trade-off", expL15},
		{"B1", "Refs [6,7] — PDBM database benchmark suite", expB1},
		{"WCS", "§3.1 — assembled Writable Control Store microprogram", expWCS},
		{"OPS", "§3.3 — hardware-operation profile per workload", expOPS},
		{"AB1", "Ablation — SCW mask bits on/off", expAB1},
		{"AB2", "Ablation — double vs single buffering", expAB2},
		{"FLT", "Fault injection — degraded-mode retrieval ladder", expFLT},
		{"CLUSTER", "Sharded cluster — scatter-gather throughput and replica failover", expCLUSTER},
		{"WRITE", "Durable replicated writes — assert/retract churn under retrieval load", expWRITE},
		{"PLAN", "Adaptive planner — cost-based mode selection and hedged tail latency", expPLAN},
		{"OBS", "Observability overhead — flight recorder + SLO accounting on vs off", expOBS},
	}

	// -exp accepts a comma-separated list of ids; "all" runs everything.
	want := map[string]bool{}
	if !strings.EqualFold(*exp, "all") {
		for _, id := range strings.Split(*exp, ",") {
			if id = strings.TrimSpace(id); id != "" {
				want[strings.ToUpper(id)] = false
			}
		}
	}
	for _, e := range exps {
		if len(want) > 0 {
			if _, ok := want[strings.ToUpper(e.id)]; !ok {
				continue
			}
			want[strings.ToUpper(e.id)] = true
		}
		fmt.Printf("\n## %s: %s\n\n", e.id, e.title)
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "clarebench: %s: %v\n", e.id, err)
			os.Exit(1)
		}
	}
	for id, ran := range want {
		if !ran {
			ids := make([]string, len(exps))
			for i, e := range exps {
				ids[i] = e.id
			}
			sort.Strings(ids)
			fmt.Fprintf(os.Stderr, "clarebench: unknown experiment %q (have %s)\n", id, strings.Join(ids, " "))
			os.Exit(2)
		}
	}
	if *jsonOut {
		path := *jsonPath
		if path == "" {
			path = benchPath(*exp)
		}
		if err := writeJSON(path); err != nil {
			fmt.Fprintf(os.Stderr, "clarebench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s (%d metrics)\n", path, recordedCount())
	}
}

// benchPath names the default -json output file after the git commit, so
// successive CI runs accumulate a perf trajectory (BENCH_<sha>.json per
// commit) instead of overwriting one BENCH_<exp>.json. Outside a git
// checkout the experiment id is the fallback stamp.
func benchPath(exp string) string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	stamp := strings.TrimSpace(string(out))
	if err != nil || stamp == "" {
		stamp = strings.NewReplacer("/", "_", ",", "_").Replace(exp)
	}
	return fmt.Sprintf("BENCH_%s.json", stamp)
}
