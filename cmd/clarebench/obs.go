package main

import (
	"fmt"
	"time"

	"clare/internal/core"
	"clare/internal/crs"
	"clare/internal/telemetry"
	"clare/internal/term"
	"clare/internal/workload"
)

// expOBS prices the always-on diagnosis stack: the same retrieval
// workload through a bare server and through one with the flight
// recorder, SLO tracker, and slow-query detection all armed (thresholds
// high enough that nothing fires — steady-state bookkeeping is the
// cost under test, not EXPLAIN re-runs). The headline is the
// recorder-on/recorder-off throughput ratio, gated by benchgate at
// 0.95x: the stack must be cheap enough to leave on in production.
func expOBS() error {
	const (
		rounds = 6
		passes = 40
	)
	wk := workload.WarrenKB{Scale: 0.01, Seed: 1}
	preds := wk.Generate()

	build := func(armed bool) (*crs.Server, error) {
		cfg := core.DefaultConfig()
		if armed {
			cfg.Flight = telemetry.NewFlightRecorder(telemetry.DefaultFlightSize)
		}
		r, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		s := crs.NewServer(r)
		if armed {
			s.SetFlight(cfg.Flight, "")
			s.SetSlowLog(telemetry.NewSlowQueryLog(telemetry.DefaultSlowLogSize, 0), time.Hour, 0)
			s.SetSLO(telemetry.NewSLOTracker(telemetry.SLO{P99: time.Hour}))
		}
		for _, p := range preds {
			if err := s.Load("warren", p.Clauses); err != nil {
				return nil, err
			}
		}
		return s, nil
	}

	nGoals := len(preds)
	if nGoals > 8 {
		nGoals = 8
	}
	goals := make([]term.Term, nGoals)
	for i := range goals {
		goals[i] = term.New(preds[i].Name, term.Atom("e1"), term.NewVar("V"))
	}
	mode := core.ModeFS1FS2

	type side struct {
		name    string
		srv     *crs.Server
		elapsed time.Duration
		queries int
	}
	sides := [2]*side{{name: "recorder-off"}, {name: "recorder-on"}}
	for i, s := range sides {
		srv, err := build(i == 1)
		if err != nil {
			return err
		}
		s.srv = srv
	}

	run := func(s *side) (time.Duration, error) {
		sess := s.srv.OpenSession()
		defer sess.Close()
		start := time.Now()
		for p := 0; p < passes; p++ {
			for _, g := range goals {
				if _, err := sess.Retrieve(g, &mode); err != nil {
					return 0, err
				}
				s.queries++
			}
		}
		return time.Since(start), nil
	}
	// Warm-up both sides (query cache, board pool), then interleave the
	// measured rounds A/B/A/B so host drift hits both sides equally. The
	// headline ratio is the best round: external noise can only slow a
	// side down, never speed it up, so the best-of-rounds pairing is the
	// least noise-biased estimate of the stack's true overhead.
	for _, s := range sides {
		sess := s.srv.OpenSession()
		for _, g := range goals {
			if _, err := sess.Retrieve(g, &mode); err != nil {
				sess.Close()
				return err
			}
		}
		sess.Close()
	}
	best := 0.0
	for r := 0; r < rounds; r++ {
		var roundQPS [2]float64
		for i, s := range sides {
			d, err := run(s)
			if err != nil {
				return err
			}
			s.elapsed += d
			roundQPS[i] = float64(passes*len(goals)) / d.Seconds()
		}
		if ratio := roundQPS[1] / roundQPS[0]; ratio > best {
			best = ratio
		}
	}

	w := tab()
	fmt.Fprintln(w, "server\tqueries\twall time\twall queries/s")
	qps := [2]float64{}
	for i, s := range sides {
		qps[i] = float64(s.queries) / s.elapsed.Seconds()
		fmt.Fprintf(w, "%s\t%d\t%v\t%.0f\n",
			s.name, s.queries, s.elapsed.Round(time.Microsecond), qps[i])
	}
	if err := w.Flush(); err != nil {
		return err
	}
	ratio := best
	record("OBS", "recorder_off_qps", qps[0], "wall-queries/s")
	record("OBS", "recorder_on_qps", qps[1], "wall-queries/s")
	record("OBS", "recorder_ratio", ratio, "x")

	armed := sides[1].srv
	recorded := armed.Flight().Recorded()
	fmt.Printf("(flight ring recorded %d of %d retrievals; slow log fired %d, SLO saw %d requests; best-round ratio %.3fx)\n",
		recorded, sides[1].queries+nGoals, armed.SlowLog().Captured(),
		armed.SLOTracker().Status().Requests, ratio)
	if int(recorded) != sides[1].queries+nGoals {
		return fmt.Errorf("OBS: flight ring recorded %d of %d retrievals", recorded, sides[1].queries+nGoals)
	}
	return nil
}
