package main

import (
	"fmt"
	"net"
	"sort"
	"sync/atomic"
	"time"

	"clare/internal/cluster"
	"clare/internal/core"
	"clare/internal/crs"
	"clare/internal/parse"
	"clare/internal/plan"
	"clare/internal/term"
	"clare/internal/workload"
)

// expPLAN evaluates the adaptive cost-based planner in two parts.
//
// Mode selection: a mixed workload no single static mode suits —
// selective ground probes over a fact relation (FS1 territory), ground
// probes over a rule-intensive predicate whose masked index entries
// defeat FS1 (FS2 territory), the shared-variable married_couple(S,S)
// pathology (§2.1: the codeword filter passes everything), and all-
// variable scans (any filter is pure overhead). Every query runs under
// each static mode and under the planner; the scoreboard is end-to-end
// simulated cost — the retrieval's simulated time plus the host
// unification the returned candidates still owe (at the simulator's own
// SoftwareMatchCost; software mode already paid it in-retrieval). The
// planner must reach at least the best static mode; on a genuinely
// mixed workload it should beat it, because no static mode wins every
// family.
//
// Tail latency: a real 1-shard × 2-replica cluster in which each
// replica sits behind a proxy that delays roughly one reply in twenty
// by 40ms, independently — a random per-request tail (GC pause, page
// fault), which load-aware replica scoring cannot route around because
// neither replica is slow on average. Hedged and unhedged routers serve
// the same sequential workload; hedging must cut the observed P99,
// because a duplicate fired at the P99 budget only loses when both
// replicas stall at once.
func expPLAN() error {
	if err := planModeSelection(); err != nil {
		return err
	}
	return planHedging()
}

// planWorkload is the mixed goal set with the predicates it runs over.
type planWorkload struct {
	preds []workload.Predicate
	goals []term.Term
}

func buildPlanWorkload() planWorkload {
	rel := workload.Relation{Name: "plrel", Facts: 4096, Domain: 400, Arity: 2, Seed: 7}
	rules := workload.Rules{Name: "plrule", Rules: 300, Facts: 60, Seed: 3}
	fam := workload.Family{Couples: 600, SameEvery: 24}
	w := planWorkload{preds: []workload.Predicate{
		{Name: "plrel", Clauses: rel.Clauses()},
		{Name: "plrule", Clauses: rules.Clauses()},
		{Name: "married_couple", Clauses: fam.Clauses()},
	}}
	shared := parse.MustTerm("married_couple(S, S)")
	const rounds = 25
	for i := 0; i < rounds; i++ {
		// 4 selective fact probes : 2 rule-predicate probes : 1 shared-var
		// goal : 1 all-variable scan per round.
		for k := 0; k < 4; k++ {
			w.goals = append(w.goals, rel.Probe((4*i+k)%rel.Domain))
		}
		w.goals = append(w.goals,
			term.New("plrule", term.Atom(fmt.Sprintf("c%d", i%60)), term.NewVar("V")),
			term.New("plrule", term.Atom(fmt.Sprintf("c%d", (i+17)%60)), term.NewVar("V")),
			shared,
			term.New("plrel", term.NewVar("X"), term.NewVar("Y")),
		)
	}
	return w
}

func (w planWorkload) load(r *core.Retriever) error {
	for _, p := range w.preds {
		if _, err := r.AddClauses("plan", p.Clauses); err != nil {
			return err
		}
	}
	return nil
}

// funnelCost is one query's end-to-end simulated cost: the retrieval
// plus the host unification its candidates still owe downstream.
// Software mode performed the host matching inside the retrieval, so
// its candidates owe nothing.
func funnelCost(rt *core.Retrieval, mode core.SearchMode, hostUnit time.Duration) time.Duration {
	c := rt.Stats.Total
	if mode != core.ModeSoftware {
		c += time.Duration(len(rt.Candidates)) * hostUnit
	}
	return c
}

func planModeSelection() error {
	w := buildPlanWorkload()
	hostUnit := core.DefaultConfig().SoftwareMatchCost
	modes := []core.SearchMode{core.ModeSoftware, core.ModeFS1, core.ModeFS2, core.ModeFS1FS2}

	static, err := core.New(core.DefaultConfig())
	if err != nil {
		return err
	}
	if err := w.load(static); err != nil {
		return err
	}
	tw := tab()
	fmt.Fprintln(tw, "strategy\tqueries\tsim cost\tsim queries/s")
	best, worst := 0.0, 0.0
	for _, m := range modes {
		var total time.Duration
		for _, g := range w.goals {
			rt, err := static.Retrieve(g, m)
			if err != nil {
				return err
			}
			total += funnelCost(rt, m, hostUnit)
		}
		qps := float64(len(w.goals)) / total.Seconds()
		if best == 0 || qps > best {
			best = qps
		}
		if worst == 0 || qps < worst {
			worst = qps
		}
		fmt.Fprintf(tw, "static %s\t%d\t%v\t%.0f\n", m, len(w.goals), total.Round(time.Microsecond), qps)
	}

	// The planner side: prime the statistics store by observing one pass
	// per static mode (what a warmed-up server has seen), then run the
	// workload with every mode chosen by the planner.
	cfg := core.DefaultConfig()
	cfg.Planner = plan.New(plan.Config{})
	pr, err := core.New(cfg)
	if err != nil {
		return err
	}
	if err := w.load(pr); err != nil {
		return err
	}
	for _, m := range modes {
		for _, g := range w.goals {
			if _, err := pr.Retrieve(g, m); err != nil {
				return err
			}
		}
	}
	var total time.Duration
	for _, g := range w.goals {
		m, _, err := pr.PlanMode(g)
		if err != nil {
			return err
		}
		rt, err := pr.Retrieve(g, m)
		if err != nil {
			return err
		}
		total += funnelCost(rt, m, hostUnit)
	}
	qps := float64(len(w.goals)) / total.Seconds()
	fmt.Fprintf(tw, "planner\t%d\t%v\t%.0f\n", len(w.goals), total.Round(time.Microsecond), qps)
	if err := tw.Flush(); err != nil {
		return err
	}

	ctr := pr.Planner().Counters()
	fmt.Printf("\nplanner decisions: ")
	for pm := plan.Mode(0); pm < plan.NumModes; pm++ {
		fmt.Printf("%s=%d ", pm, ctr.ByMode[pm])
	}
	fmt.Printf("(shared-var codeword skips %d, observations %d)\n", ctr.SharedVarSkips, ctr.Observations)

	record("PLAN", "planner_sim_qps", qps, "queries/s")
	record("PLAN", "static_best_sim_qps", best, "queries/s")
	record("PLAN", "static_worst_sim_qps", worst, "queries/s")
	record("PLAN", "plan_vs_best", qps/best, "x")
	record("PLAN", "plan_vs_worst", qps/worst, "x")
	record("PLAN", "sharedvar_skips", float64(ctr.SharedVarSkips), "count")
	fmt.Printf("planner %.2fx the best static mode, %.2fx the worst (>= 0.9x best required)\n",
		qps/best, qps/worst)
	if ctr.SharedVarSkips == 0 {
		return fmt.Errorf("PLAN: no shared-variable goal skipped the codeword filter")
	}
	if qps < 0.9*best {
		return fmt.Errorf("PLAN: planner %.0f sim qps under 0.9x the best static mode (%.0f)", qps, best)
	}
	return nil
}

// slowProxy forwards TCP bytes to a backend, stalling the reply to one
// request in `every` by `delay` — an intermittently slow replica (GC
// pause, page fault): fast enough on average that load-aware scoring
// keeps it in rotation, occasionally pathological. Requests are counted
// as newline-terminated client lines, so the stall schedule is exact
// regardless of how replies fragment into TCP reads.
type slowProxy struct {
	l       net.Listener
	backend string
	delay   time.Duration
	every   int64
	n       atomic.Int64
	stall   atomic.Bool
}

func newSlowProxy(backend string, delay time.Duration, every int64) (*slowProxy, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &slowProxy{l: l, backend: backend, delay: delay, every: every}
	go p.serve()
	return p, nil
}

func (p *slowProxy) addr() string { return p.l.Addr().String() }
func (p *slowProxy) close()       { p.l.Close() }

func (p *slowProxy) serve() {
	for {
		c, err := p.l.Accept()
		if err != nil {
			return
		}
		go p.handle(c)
	}
}

func (p *slowProxy) handle(client net.Conn) {
	backend, err := net.Dial("tcp", p.backend)
	if err != nil {
		client.Close()
		return
	}
	go func() {
		buf := make([]byte, 32<<10)
		for {
			n, err := client.Read(buf)
			if n > 0 {
				for _, b := range buf[:n] {
					if b == '\n' && p.n.Add(1)%p.every == 0 {
						p.stall.Store(true)
					}
				}
				if _, werr := backend.Write(buf[:n]); werr != nil {
					break
				}
			}
			if err != nil {
				break
			}
		}
		backend.Close()
		client.Close()
	}()
	buf := make([]byte, 32<<10)
	for {
		n, err := backend.Read(buf)
		if n > 0 {
			if p.stall.CompareAndSwap(true, false) {
				time.Sleep(p.delay)
			}
			if _, werr := client.Write(buf[:n]); werr != nil {
				break
			}
		}
		if err != nil {
			break
		}
	}
	client.Close()
	backend.Close()
}

func planHedging() error {
	const (
		queries = 600
		delay   = 40 * time.Millisecond
		every   = 50
	)
	rel := workload.Relation{Name: "hpred", Facts: 400, Domain: 40, Arity: 2, Seed: 11}
	clauses := rel.Clauses()

	// Two identical replicas of the one shard, each behind its own
	// intermittently slow proxy (independent delay schedules).
	var addrs []string
	var closers []func()
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	for rep := 0; rep < 2; rep++ {
		r, err := core.New(core.DefaultConfig())
		if err != nil {
			return err
		}
		if _, err := r.AddClauses("plan", clauses); err != nil {
			return err
		}
		cs := crs.NewServer(r)
		if err := cs.Adopt(); err != nil {
			return err
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go cs.Serve(l)
		closers = append(closers, func() { l.Close() })
		proxy, err := newSlowProxy(l.Addr().String(), delay, every)
		if err != nil {
			return err
		}
		// Offset the second schedule so the replicas do not stall in
		// lockstep.
		proxy.n.Store(int64(rep) * every / 2)
		closers = append(closers, proxy.close)
		addrs = append(addrs, proxy.addr())
	}

	run := func(hedge bool) (p99 float64, hedges, wins int64, err error) {
		router, err := cluster.NewRouter(cluster.Config{
			Shards:      [][]string{addrs},
			WireTimeout: 2 * time.Second,
			CallTimeout: 2 * time.Second,
			Hedge:       hedge,
			HedgeFloor:  2 * time.Millisecond,
		})
		if err != nil {
			return 0, 0, 0, err
		}
		defer router.Close()
		walls := make([]time.Duration, 0, queries)
		for i := 0; i < queries; i++ {
			goal := fmt.Sprintf("hpred(k%d, V)", i%rel.Domain)
			start := time.Now()
			if _, err := router.Retrieve("auto", goal); err != nil {
				return 0, 0, 0, err
			}
			walls = append(walls, time.Since(start))
		}
		stats, err := router.Stats()
		if err != nil {
			return 0, 0, 0, err
		}
		sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
		rank := (99*len(walls) + 99) / 100 // nearest-rank ceil(0.99 n)
		if rank > len(walls) {
			rank = len(walls)
		}
		p99 = float64(walls[rank-1].Microseconds()) / 1000
		return p99, stats["cluster.hedges"], stats["cluster.hedge.wins"], nil
	}

	unhedged, _, _, err := run(false)
	if err != nil {
		return err
	}
	hedged, hedges, wins, err := run(true)
	if err != nil {
		return err
	}
	improvement := unhedged / hedged
	fmt.Printf("\ntail latency, 1 shard x 2 replicas, each replica ~%d%% slow by %v:\n", 100/every, delay)
	fmt.Printf("  unhedged P99 %.1f ms, hedged P99 %.1f ms (%.1fx; %d hedges fired, %d won)\n",
		unhedged, hedged, improvement, hedges, wins)
	record("PLAN", "hedge_unhedged_p99_ms", unhedged, "ms")
	record("PLAN", "hedge_hedged_p99_ms", hedged, "ms")
	record("PLAN", "hedge_p99_improvement", improvement, "x")
	record("PLAN", "hedges_fired", float64(hedges), "count")
	if hedges == 0 {
		return fmt.Errorf("PLAN: no hedge fired against the slow replica")
	}
	if improvement < 1.5 {
		return fmt.Errorf("PLAN: hedging improved P99 only %.2fx (unhedged %.1fms, hedged %.1fms), want >= 1.5x",
			improvement, unhedged, hedged)
	}
	return nil
}
