package main

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"clare/internal/cluster"
	"clare/internal/core"
	"clare/internal/crs"
	"clare/internal/wal"
	"clare/internal/workload"
)

// expWRITE evaluates the durable replicated write path: a real
// primary + 2-replica shard group (each node recovering its own WAL)
// behind a real router with log shipping, under a mixed workload of
// autocommit assert/retract churn and concurrent retrievals at a
// configurable write ratio. The headline numbers are wall-clock write
// and retrieval throughput and the replication lag left when the churn
// stops; the invariants are zero client-visible errors and replica
// convergence (identical candidate sets on all three nodes once the
// shippers drain).
func expWRITE() error {
	w := tab()
	fmt.Fprintln(w, "write ratio\twrites\tqueries\twall writes/s\twall queries/s\tend lag\terrors")
	for _, pct := range []int{10, 30} {
		res, err := runWriteChurn(pct)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d%%\t%d\t%d\t%.0f\t%.0f\t%d\t%d\n",
			pct, res.writes, res.queries, res.writeQPS, res.queryQPS, res.endLag, res.errors)
		record("WRITE", fmt.Sprintf("write_qps_%dpct", pct), res.writeQPS, "wall-writes/s")
		record("WRITE", fmt.Sprintf("query_qps_%dpct", pct), res.queryQPS, "wall-queries/s")
		record("WRITE", fmt.Sprintf("end_lag_%dpct", pct), float64(res.endLag), "records")
		record("WRITE", fmt.Sprintf("errors_%dpct", pct), float64(res.errors), "errors")
		if res.errors != 0 {
			return fmt.Errorf("WRITE: %d client-visible errors at %d%% write ratio", res.errors, pct)
		}
	}
	w.Flush()
	noteShards(1)
	noteBoards(3)
	noteEngine("sim")
	fmt.Println("\nreplicas converged to the primary's candidate sets after every run (zero errors required)")
	return nil
}

type writeChurnResult struct {
	writes, queries int64
	errors          int64
	writeQPS        float64
	queryQPS        float64
	endLag          int64
}

// walNode is one in-process durable backend of the churn cluster.
type walNode struct {
	srv *crs.Server
	log *wal.Log
	lis net.Listener
}

func startWALNode(preds []workload.Predicate, dir string, readOnly bool) (*walNode, error) {
	r, err := core.New(core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	s := crs.NewServer(r)
	for _, p := range preds {
		if err := s.Load("write", p.Clauses); err != nil {
			return nil, err
		}
	}
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return nil, err
	}
	s.AttachWAL(l)
	if _, err := s.Recover(); err != nil {
		return nil, err
	}
	s.SetReadOnly(readOnly)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go s.Serve(lis)
	return &walNode{srv: s, log: l, lis: lis}, nil
}

func runWriteChurn(pct int) (*writeChurnResult, error) {
	const (
		facts   = 150
		workers = 8
		perW    = 100
	)
	rel := workload.Relation{Name: "wq", Facts: facts, Domain: 40, Arity: 2, Seed: 7}
	preds := []workload.Predicate{{Name: "wq", Clauses: rel.Clauses()}}

	base, err := os.MkdirTemp("", "clarebench-write-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(base)

	var nodes []*walNode
	var addrs []string
	for i := 0; i < 3; i++ {
		n, err := startWALNode(preds, filepath.Join(base, fmt.Sprintf("node%d", i)), i > 0)
		if err != nil {
			return nil, err
		}
		defer n.lis.Close()
		defer n.log.Close()
		nodes = append(nodes, n)
		addrs = append(addrs, n.lis.Addr().String())
	}

	router, err := cluster.NewRouter(cluster.Config{
		Shards:       [][]string{addrs},
		WireTimeout:  5 * time.Second,
		CallTimeout:  5 * time.Second,
		ShipInterval: 20 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer router.Close()
	router.StartReplication()

	var writes, queries, errCount atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			var pending []string // asserted, awaiting churn retract
			for i := 0; i < perW; i++ {
				if i%10 < pct/10 {
					// Write op: assert a fresh fact, and once enough have
					// piled up retract the oldest — steady-state churn
					// rather than unbounded growth.
					if len(pending) > 3 {
						clause := pending[0]
						pending = pending[1:]
						if _, err := router.Retract(clause); err != nil {
							errCount.Add(1)
						}
						writes.Add(1)
						continue
					}
					clause := fmt.Sprintf("wq(w%d_%d, churn)", wk, i)
					if _, err := router.Assert(clause); err != nil {
						errCount.Add(1)
					} else {
						pending = append(pending, clause)
					}
					writes.Add(1)
					continue
				}
				goal := fmt.Sprintf("wq(e%d, V)", (wk*perW+i)%facts)
				if _, err := router.Retrieve("auto", goal); err != nil {
					errCount.Add(1)
				}
				queries.Add(1)
			}
		}(wk)
	}
	wg.Wait()
	elapsed := time.Since(start)

	kv, err := router.Stats()
	if err != nil {
		return nil, err
	}
	endLag := kv["cluster.wal.lag.max"]

	// Drain the shippers and verify convergence: every replica must hold
	// the primary's full log and answer with identical candidates.
	primarySeq := nodes[0].log.LastSeq()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		router.CatchUpReplication()
		if nodes[1].srv.AppliedSeq() == primarySeq && nodes[2].srv.AppliedSeq() == primarySeq {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 1; i < 3; i++ {
		if got := nodes[i].srv.AppliedSeq(); got != primarySeq {
			return nil, fmt.Errorf("WRITE: replica %d applied seq %d, primary at %d", i, got, primarySeq)
		}
	}
	want, err := retrieveAll(addrs[0], "wq(X, V)")
	if err != nil {
		return nil, err
	}
	for i := 1; i < 3; i++ {
		got, err := retrieveAll(addrs[i], "wq(X, V)")
		if err != nil {
			return nil, err
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			return nil, fmt.Errorf("WRITE: replica %d candidates diverge from primary after catch-up", i)
		}
	}

	res := &writeChurnResult{
		writes:  writes.Load(),
		queries: queries.Load(),
		errors:  errCount.Load(),
		endLag:  endLag,
	}
	res.writeQPS = float64(res.writes) / elapsed.Seconds()
	res.queryQPS = float64(res.queries) / elapsed.Seconds()
	return res, nil
}

// retrieveAll asks one backend directly over a fresh connection.
func retrieveAll(addr, goal string) ([]string, error) {
	c, err := crs.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	res, err := c.Retrieve("auto", goal)
	if err != nil {
		return nil, err
	}
	return res.Clauses, nil
}
