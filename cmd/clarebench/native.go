package main

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"clare/internal/core"
	"clare/internal/term"
	"clare/internal/workload"
)

// expNATIVE races the native vectorized engine against the cycle-accurate
// simulation on the Warren-scale KB: both engines answer the same goal
// set through the fs1+fs2 pipeline, candidates are checked identical
// query by query (the differential contract, zero divergences), and the
// headline number is wall-clock throughput — the native engine's
// first-class metric, where the simulation's is simulated time.
func expNATIVE() error {
	const passes = 16
	wk := workload.WarrenKB{Scale: 0.01, Seed: 1}
	preds := wk.Generate()

	build := func(engine core.Engine) (*core.Retriever, error) {
		cfg := core.DefaultConfig()
		cfg.Engine = engine
		r, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		for _, p := range preds {
			if _, err := r.AddClauses("warren", p.Clauses); err != nil {
				return nil, err
			}
		}
		return r, nil
	}
	nGoals := len(preds)
	if nGoals > 8 {
		nGoals = 8
	}
	goals := make([]term.Term, nGoals)
	for i := range goals {
		goals[i] = term.New(preds[i].Name, term.Atom("e1"), term.NewVar("V"))
	}

	type side struct {
		engine core.Engine
		r      *core.Retriever
		addrs  []string
		qps    float64
	}
	sides := make([]*side, 0, 2)
	for _, engine := range []core.Engine{core.EngineSim, core.EngineNative} {
		r, err := build(engine)
		if err != nil {
			return err
		}
		sides = append(sides, &side{engine: engine, r: r})
		noteEngine(engine.String())
	}

	w := tab()
	fmt.Fprintln(w, "engine\tqueries\twall time\twall queries/s\tspeedup")
	divergences := 0
	for _, s := range sides {
		// Warm-up pass: fills the query cache and the native arena pool,
		// and captures the candidate sets for the differential check.
		s.addrs = make([]string, nGoals)
		for i, g := range goals {
			rt, err := s.r.Retrieve(g, core.ModeFS1FS2)
			if err != nil {
				return err
			}
			s.addrs[i] = fmt.Sprint(addrList(rt))
			if ref := sides[0].addrs[i]; s.addrs[i] != ref {
				divergences++
				fmt.Printf("DIVERGENCE goal %d: sim %s vs %s %s\n", i, ref, s.engine, s.addrs[i])
			}
		}
		queries := 0
		start := time.Now()
		for p := 0; p < passes; p++ {
			for _, g := range goals {
				if _, err := s.r.Retrieve(g, core.ModeFS1FS2); err != nil {
					return err
				}
				queries++
			}
		}
		elapsed := time.Since(start)
		s.qps = float64(queries) / elapsed.Seconds()
		fmt.Fprintf(w, "%s\t%d\t%v\t%.0f\t%.1fx\n",
			s.engine, queries, elapsed.Round(time.Microsecond), s.qps, s.qps/sides[0].qps)
		record("NATIVE", s.engine.String()+"_wall_qps", s.qps, "wall-queries/s")
	}
	if err := w.Flush(); err != nil {
		return err
	}
	record("NATIVE", "native_speedup", sides[1].qps/sides[0].qps, "x")
	record("NATIVE", "divergences", float64(divergences), "count")
	if divergences > 0 {
		return fmt.Errorf("NATIVE: %d candidate-set divergences between engines", divergences)
	}
	fmt.Printf("(candidate sets identical across engines on all %d goals; mode fs1+fs2)\n", nGoals)
	if err := nativeParallelSweep(); err != nil {
		return err
	}
	return nativeColdStart()
}

// nativeParallelSweep measures the partitioned FS1 scan's worker-count
// scaling curve on the biggest predicate of a 10x-larger Warren KB (big
// enough to split under the default partition threshold), in fs1 mode —
// the whole-secondary-file scan is the partitioned path's showcase. The
// curve is honest about the host: on a single-core runner the configured
// workers still exercise the concurrent merge path but cannot run
// simultaneously, so the speedup hovers near (slightly below) 1x; the
// recorded gomaxprocs in the JSON header tells benchgate whether the
// speedup floor applies.
func nativeParallelSweep() error {
	wk := workload.WarrenKB{Scale: 0.1, Seed: 1}
	preds := wk.Generate()
	big := 0
	for i := range preds {
		if len(preds[i].Clauses) > len(preds[big].Clauses) {
			big = i
		}
	}
	cfg := core.DefaultConfig()
	cfg.Engine = core.EngineNative
	r, err := core.New(cfg)
	if err != nil {
		return err
	}
	if _, err := r.AddClauses("warren", preds[big].Clauses); err != nil {
		return err
	}
	const passes = 50
	goals := make([]term.Term, 8)
	for i := range goals {
		goals[i] = term.New(preds[big].Name, term.Atom(fmt.Sprintf("e%d", i+1)), term.NewVar("V"))
	}
	fmt.Printf("\nparallel scan sweep: %s/%d entries, mode fs1, GOMAXPROCS %d\n",
		preds[big].Name, len(preds[big].Clauses), runtime.GOMAXPROCS(0))
	w := tab()
	fmt.Fprintln(w, "scan workers\tqueries\twall time\twall queries/s\tspeedup vs 1")
	var base float64
	for _, workers := range []int{1, 2, 4, 8} {
		r.SetScanWorkers(workers)
		for _, g := range goals { // warm-up: arena + pool + query cache
			if _, err := r.Retrieve(g, core.ModeFS1); err != nil {
				return err
			}
		}
		queries := 0
		start := time.Now()
		for p := 0; p < passes; p++ {
			for _, g := range goals {
				if _, err := r.Retrieve(g, core.ModeFS1); err != nil {
					return err
				}
				queries++
			}
		}
		elapsed := time.Since(start)
		qps := float64(queries) / elapsed.Seconds()
		if workers == 1 {
			base = qps
		}
		fmt.Fprintf(w, "%d\t%d\t%v\t%.0f\t%.2fx\n",
			workers, queries, elapsed.Round(time.Microsecond), qps, qps/base)
		record("NATIVE", fmt.Sprintf("par_wall_qps_w%d", workers), qps, "wall-queries/s")
		if workers == 8 {
			record("NATIVE", "par_speedup_w8", qps/base, "x")
		}
	}
	return w.Flush()
}

// nativeColdStart times loading a kbc-built store through the heap
// decoder vs mapping it read-only — the mmap path's pitch is that cold
// start becomes page-in instead of re-decode.
func nativeColdStart() error {
	wk := workload.WarrenKB{Scale: 0.1, Seed: 1}
	preds := wk.Generate()
	r, err := core.New(core.DefaultConfig())
	if err != nil {
		return err
	}
	for _, p := range preds {
		if _, err := r.AddClauses("warren", p.Clauses); err != nil {
			return err
		}
	}
	dir, err := os.MkdirTemp("", "clarebench-store")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "warren.clare")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.SaveKB(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}

	heapStart := time.Now()
	hf, err := os.Open(path)
	if err != nil {
		return err
	}
	hr, err := core.LoadRetriever(core.DefaultConfig(), hf)
	hf.Close()
	if err != nil {
		return err
	}
	heapMs := float64(time.Since(heapStart).Microseconds()) / 1000

	mapStart := time.Now()
	mr, mapped, err := core.MapRetriever(core.DefaultConfig(), path)
	if err != nil {
		return err
	}
	mapMs := float64(time.Since(mapStart).Microseconds()) / 1000
	defer mr.CloseStore()

	// Sanity: both loads answer a probe identically.
	goal := term.New(preds[0].Name, term.Atom("e1"), term.NewVar("V"))
	hrt, err := hr.Retrieve(goal, core.ModeFS1FS2)
	if err != nil {
		return err
	}
	mrt, err := mr.Retrieve(goal, core.ModeFS1FS2)
	if err != nil {
		return err
	}
	if fmt.Sprint(addrList(hrt)) != fmt.Sprint(addrList(mrt)) {
		return fmt.Errorf("NATIVE: heap and mmap loads disagree on %v", goal)
	}
	fmt.Printf("\ncold start, %d-predicate store (%.1f MB): heap decode %.1f ms, mmap %.1f ms (mapped=%v, %.1fx)\n",
		len(preds), float64(st.Size())/(1<<20), heapMs, mapMs, mapped, heapMs/mapMs)
	record("NATIVE", "coldstart_heap_ms", heapMs, "ms")
	record("NATIVE", "coldstart_mmap_ms", mapMs, "ms")
	return nil
}
