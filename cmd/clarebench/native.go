package main

import (
	"fmt"
	"time"

	"clare/internal/core"
	"clare/internal/term"
	"clare/internal/workload"
)

// expNATIVE races the native vectorized engine against the cycle-accurate
// simulation on the Warren-scale KB: both engines answer the same goal
// set through the fs1+fs2 pipeline, candidates are checked identical
// query by query (the differential contract, zero divergences), and the
// headline number is wall-clock throughput — the native engine's
// first-class metric, where the simulation's is simulated time.
func expNATIVE() error {
	const passes = 16
	wk := workload.WarrenKB{Scale: 0.01, Seed: 1}
	preds := wk.Generate()

	build := func(engine core.Engine) (*core.Retriever, error) {
		cfg := core.DefaultConfig()
		cfg.Engine = engine
		r, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		for _, p := range preds {
			if _, err := r.AddClauses("warren", p.Clauses); err != nil {
				return nil, err
			}
		}
		return r, nil
	}
	nGoals := len(preds)
	if nGoals > 8 {
		nGoals = 8
	}
	goals := make([]term.Term, nGoals)
	for i := range goals {
		goals[i] = term.New(preds[i].Name, term.Atom("e1"), term.NewVar("V"))
	}

	type side struct {
		engine core.Engine
		r      *core.Retriever
		addrs  []string
		qps    float64
	}
	sides := make([]*side, 0, 2)
	for _, engine := range []core.Engine{core.EngineSim, core.EngineNative} {
		r, err := build(engine)
		if err != nil {
			return err
		}
		sides = append(sides, &side{engine: engine, r: r})
		noteEngine(engine.String())
	}

	w := tab()
	fmt.Fprintln(w, "engine\tqueries\twall time\twall queries/s\tspeedup")
	divergences := 0
	for _, s := range sides {
		// Warm-up pass: fills the query cache and the native arena pool,
		// and captures the candidate sets for the differential check.
		s.addrs = make([]string, nGoals)
		for i, g := range goals {
			rt, err := s.r.Retrieve(g, core.ModeFS1FS2)
			if err != nil {
				return err
			}
			s.addrs[i] = fmt.Sprint(addrList(rt))
			if ref := sides[0].addrs[i]; s.addrs[i] != ref {
				divergences++
				fmt.Printf("DIVERGENCE goal %d: sim %s vs %s %s\n", i, ref, s.engine, s.addrs[i])
			}
		}
		queries := 0
		start := time.Now()
		for p := 0; p < passes; p++ {
			for _, g := range goals {
				if _, err := s.r.Retrieve(g, core.ModeFS1FS2); err != nil {
					return err
				}
				queries++
			}
		}
		elapsed := time.Since(start)
		s.qps = float64(queries) / elapsed.Seconds()
		fmt.Fprintf(w, "%s\t%d\t%v\t%.0f\t%.1fx\n",
			s.engine, queries, elapsed.Round(time.Microsecond), s.qps, s.qps/sides[0].qps)
		record("NATIVE", s.engine.String()+"_wall_qps", s.qps, "wall-queries/s")
	}
	if err := w.Flush(); err != nil {
		return err
	}
	record("NATIVE", "native_speedup", sides[1].qps/sides[0].qps, "x")
	record("NATIVE", "divergences", float64(divergences), "count")
	if divergences > 0 {
		return fmt.Errorf("NATIVE: %d candidate-set divergences between engines", divergences)
	}
	fmt.Printf("(candidate sets identical across engines on all %d goals; mode fs1+fs2)\n", nGoals)
	return nil
}
