package main

import (
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"clare/internal/core"
	"clare/internal/disk"
	"clare/internal/fault"
	"clare/internal/fs2"
	"clare/internal/parse"
	"clare/internal/pdbmbench"
	"clare/internal/pif"
	"clare/internal/ptu"
	"clare/internal/scw"
	"clare/internal/symtab"
	"clare/internal/term"
	"clare/internal/unify"
	"clare/internal/workload"
)

func tab() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

// expT1 derives Table 1 from the datapath routes and compares with the
// paper's values.
func expT1() error {
	paper := map[fs2.OpCode]int64{
		fs2.OpMatch:                105,
		fs2.OpDBStore:              95,
		fs2.OpQueryStore:           115,
		fs2.OpDBFetch:              105,
		fs2.OpQueryFetch:           170,
		fs2.OpDBCrossBoundFetch:    170,
		fs2.OpQueryCrossBoundFetch: 235,
	}
	order := []fs2.OpCode{fs2.OpMatch, fs2.OpDBStore, fs2.OpQueryStore, fs2.OpDBFetch,
		fs2.OpQueryFetch, fs2.OpDBCrossBoundFetch, fs2.OpQueryCrossBoundFetch}
	got := fs2.Table1()
	w := tab()
	fmt.Fprintln(w, "operation\tpaper (ns)\tmeasured (ns)\tmatch")
	for _, op := range order {
		ok := "YES"
		if got[op].Nanoseconds() != paper[op] {
			ok = "NO"
		}
		fmt.Fprintf(w, "%v\t%d\t%d\t%s\n", op, paper[op], got[op].Nanoseconds(), ok)
	}
	return w.Flush()
}

// expFigures prints the per-route timing calculations of Figures 6–12.
func expFigures() error {
	for _, op := range fs2.Breakdowns() {
		fmt.Println(op.Breakdown())
	}
	return nil
}

// expF1 demonstrates the Figure 1 algorithm: each case of the algorithm
// exercised on a named example, with the decision shown.
func expF1() error {
	cases := []struct {
		label string
		q, h  string
	}{
		{"case 1: integers", "p(42)", "p(42)"},
		{"case 1: integers differ", "p(42)", "p(43)"},
		{"case 2: atoms", "p(wine)", "p(wine)"},
		{"case 2: floats differ", "p(2.5)", "p(3.5)"},
		{"case 3: structures, first level", "p(f(1))", "p(f(2))"},
		{"case 3: depth-2 invisible at level 3", "p(f(g(1)))", "p(f(g(2)))"},
		{"case 4: lists, lengths", "p([1,2])", "p([1,2,3])"},
		{"case 4: unlimited list", "p([1|T])", "p([1,2,3])"},
		{"case 5a/5b: db variable", "p(a, a)", "p(A, A)"},
		{"case 5c: db cross binding (§3.3.6 example)", "f(X, a, b)", "f(A, a, A)"},
		{"case 5c rejecting", "f(c, a, b)", "f(A, a, A)"},
		{"case 6a/6b: query variable", "p(X, X)", "p(a, a)"},
		{"case 6c: query cross binding", "p(X, X)", "p(A, b)"},
		{"case 6c rejecting", "p(X, X)", "p(c, b)"},
	}
	w := tab()
	fmt.Fprintln(w, "algorithm case\tquery\tclause head\tlevel3+xb\tfull unification")
	for _, c := range cases {
		qt, ht := parse.MustTerm(c.q), parse.MustTerm(c.h)
		got := ptu.Match(qt, ht, ptu.FS2Config)
		oracle := unify.Unifiable(qt, term.Rename(ht))
		fmt.Fprintf(w, "%s\t%s\t%s\t%v\t%v\n", c.label, c.q, c.h, got, oracle)
	}
	return w.Flush()
}

// expTA1 checks the PIF tag assignments against Table A1 and shows a
// disassembled example clause.
func expTA1() error {
	w := tab()
	fmt.Fprintln(w, "item\tpaper tag\tmeasured tag\tmatch")
	rows := []struct {
		name  string
		paper uint8
		got   pif.Tag
	}{
		{"Anonymous Var", 0x20, pif.TagAnonVar},
		{"First Query Var", 0x27, pif.TagFirstQV},
		{"Subsequent Query Var", 0x25, pif.TagSubQV},
		{"First DB Var", 0x26, pif.TagFirstDV},
		{"Subsequent DB Var", 0x24, pif.TagSubDV},
		{"Atom Pointer", 0x08, pif.TagAtomPtr},
		{"Float Pointer", 0x09, pif.TagFloatPtr},
		{"Integer In-line (0x1N)", 0x10, pif.Tag(pif.TagIntBase)},
		{"Structure In-line (011a aaaa)", 0x60, pif.GroupStructInline},
		{"Structure Pointer (010a aaaa)", 0x40, pif.GroupStructPtr},
		{"Terminated List In-line (111a aaaa)", 0xE0, pif.GroupListInline},
		{"Unterminated List In-line (101a aaaa)", 0xA0, pif.GroupUListInline},
		{"Terminated List Pointer (110a aaaa)", 0xC0, pif.GroupListPtr},
		{"Unterminated List Pointer (100a aaaa)", 0x80, pif.GroupUListPtr},
	}
	for _, r := range rows {
		ok := "YES"
		if uint8(r.got) != r.paper {
			ok = "NO"
		}
		fmt.Fprintf(w, "%s\t0x%02x\t0x%02x\t%s\n", r.name, r.paper, uint8(r.got), ok)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	syms := symtab.New()
	enc := pif.NewEncoder(syms)
	e, err := enc.Encode(parse.MustTerm("p(foo, 42, X, [a|T], f(X))"), pif.DBSide)
	if err != nil {
		return err
	}
	fmt.Println("\nexample PIF compilation of p(foo, 42, X, [a|T], f(X)):")
	fmt.Println(e)
	return nil
}

// expR1 reproduces the §4 rate comparison.
func expR1() error {
	wOp, wt := fs2.WorstCaseOp()
	w := tab()
	fmt.Fprintln(w, "quantity\tpaper\tmeasured")
	fmt.Fprintf(w, "worst-case operation\tQUERY_CROSS_BOUND_FETCH (235ns)\t%v (%v)\n", wOp, wt)
	fmt.Fprintf(w, "FS2 worst-case filter rate\t≈4.25 MB/s\t%.3f MB/s\n", fs2.WorstCaseRate()/1e6)
	fmt.Fprintf(w, "Fujitsu M2351A peak rate\t≈2 MB/s\t%.2f MB/s\n", disk.FujitsuM2351A.TransferRate/1e6)
	fmt.Fprintf(w, "Micropolis 1325 rate\t(slower, SCSI)\t%.2f MB/s\n", disk.Micropolis1325.TransferRate/1e6)
	faster := "YES"
	if fs2.WorstCaseRate() <= disk.FujitsuM2351A.TransferRate {
		faster = "NO"
	}
	fmt.Fprintf(w, "FS2 outruns the disk\tYES\t%s\n", faster)
	return w.Flush()
}

// expR2 shows the FS1 scan rate and the secondary/clause file size ratio.
func expR2() error {
	r, err := core.New(core.DefaultConfig())
	if err != nil {
		return err
	}
	rel := workload.Relation{Name: "emp", Facts: 8192, Domain: 512, Arity: 4, Seed: 21}
	pred, err := r.AddClauses("bench", rel.Clauses())
	if err != nil {
		return err
	}
	rt, err := r.Retrieve(rel.Probe(100), core.ModeFS1)
	if err != nil {
		return err
	}
	w := tab()
	fmt.Fprintln(w, "quantity\tpaper\tmeasured")
	fmt.Fprintf(w, "FS1 scan rate\tup to 4.5 MB/s\t%.2f MB/s (hardware model)\n", scw.ScanRate/1e6)
	fmt.Fprintf(w, "secondary file size\t\"generally much smaller\"\t%d B vs %d B clause file (%.1f%%)\n",
		pred.File.IndexSizeBytes(), pred.File.SizeBytes(),
		100*float64(pred.File.IndexSizeBytes())/float64(pred.File.SizeBytes()))
	fmt.Fprintf(w, "index scan of %d entries\t—\t%v simulated\n", pred.File.Len(), rt.Stats.FS1Scan)
	fmt.Fprintf(w, "candidates after FS1\t—\t%d of %d\n", rt.Stats.AfterFS1, rt.Stats.TotalClauses)
	return w.Flush()
}

// expD1 sweeps arity past the 12-argument encoding limit and codeword
// width, measuring false drops after FS1 and after FS2.
func expD1() error {
	fmt.Println("arity sweep (facts differ only in their LAST argument; query is fully ground):")
	w := tab()
	fmt.Fprintln(w, "arity\tafter FS1\tafter FS1+FS2\ttrue\tFS1 false-drop %")
	for _, arity := range []int{4, 8, 12, 13, 16} {
		wf := workload.WideFacts{Name: "wide", Facts: 128, Arity: arity, DifferOnlyAt: arity - 1}
		r, err := core.New(core.DefaultConfig())
		if err != nil {
			return err
		}
		if _, err := r.AddClauses("b", wf.Clauses()); err != nil {
			return err
		}
		fs1, err := r.Retrieve(wf.Probe(0), core.ModeFS1)
		if err != nil {
			return err
		}
		both, err := r.Retrieve(wf.Probe(0), core.ModeFS1FS2)
		if err != nil {
			return err
		}
		fd := 100 * float64(fs1.Stats.AfterFS1-1) / 128
		fmt.Fprintf(w, "%d\t%d\t%d\t1\t%.1f%%\n", arity, fs1.Stats.AfterFS1, both.Stats.AfterFS2, fd)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	fmt.Println("\ncodeword width sweep (1024 facts over 512 keys; mean over 32 non-matching ground probes):")
	w = tab()
	fmt.Fprintln(w, "width (bits)\tmean candidates after FS1\tfalse-drop %")
	for _, width := range []int{8, 16, 24, 32, 48, 64} {
		enc, err := scw.NewEncoder(scw.Params{Width: width, BitsPerKey: 3, MaskBits: true})
		if err != nil {
			return err
		}
		rel := workload.Relation{Name: "emp", Facts: 1024, Domain: 512, Arity: 2, Seed: 5}
		ix := scw.NewIndex(enc)
		for i, c := range rel.Clauses() {
			if err := ix.Add(c.Head, uint32(i)); err != nil {
				return err
			}
		}
		total := 0
		const probes = 32
		for p := 0; p < probes; p++ {
			qd, err := enc.EncodeQuery(parse.MustTerm(fmt.Sprintf("emp(k%d, V)", 9000+p)))
			if err != nil {
				return err
			}
			total += len(ix.Scan(qd).Addrs)
		}
		mean := float64(total) / probes
		fmt.Fprintf(w, "%d\t%.1f\t%.2f%%\n", width, mean, 100*mean/1024)
	}
	return w.Flush()
}

// expD2 reproduces the married_couple(Same,Same) pathology end to end.
func expD2() error {
	fam := workload.Family{Couples: 1024, SameEvery: 32}
	r, err := core.New(core.DefaultConfig())
	if err != nil {
		return err
	}
	if _, err := r.AddClauses("family", fam.Clauses()); err != nil {
		return err
	}
	goal := parse.MustTerm("married_couple(S, S)")
	w := tab()
	fmt.Fprintln(w, "mode\tcandidates\ttrue unifiers\tfalse drops\tsimulated time")
	for _, m := range []core.SearchMode{core.ModeFS1, core.ModeFS2, core.ModeFS1FS2} {
		rt, err := r.Retrieve(goal, m)
		if err != nil {
			return err
		}
		trueU, falseD, err := rt.Evaluate()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%v\t%d\t%d\t%d\t%v\n", m, len(rt.Candidates), trueU, falseD, rt.Stats.Total.Round(time.Microsecond))
	}
	fmt.Fprintf(w, "(paper: FS1 \"would result in the retrieval of the entire predicate\" — %d clauses; FS2's cross-binding check cuts it to the %d true couples)\n",
		fam.Couples, fam.SameNameCount())
	return w.Flush()
}

// expM1 compares the four search modes on fact- and rule-intensive KBs.
func expM1() error {
	run := func(label string, clauses []core.ClauseTerm, goal term.Term) error {
		fmt.Printf("%s:\n", label)
		r, err := core.New(core.DefaultConfig())
		if err != nil {
			return err
		}
		if _, err := r.AddClauses("b", clauses); err != nil {
			return err
		}
		w := tab()
		fmt.Fprintln(w, "mode\tafter FS1\tafter FS2\ttrue\tFS1 scan\tdisk\tFS2 match\thost\ttotal (sim)")
		for _, m := range []core.SearchMode{core.ModeSoftware, core.ModeFS1, core.ModeFS2, core.ModeFS1FS2} {
			rt, err := r.Retrieve(goal, m)
			if err != nil {
				return err
			}
			trueU, _, err := rt.Evaluate()
			if err != nil {
				return err
			}
			s := rt.Stats
			us := func(d time.Duration) string { return d.Round(time.Microsecond).String() }
			fmt.Fprintf(w, "%v\t%d\t%d\t%d\t%s\t%s\t%s\t%s\t%s\n",
				m, s.AfterFS1, s.AfterFS2, trueU, us(s.FS1Scan), us(s.DiskFetch), us(s.FS2Match), us(s.HostMatch), us(s.Total))
			record("M1", fmt.Sprintf("%s_%v_sim_us", label[:4], m), float64(s.Total.Microseconds()), "us")
		}
		if err := w.Flush(); err != nil {
			return err
		}
		pred, err := r.Predicate(goal)
		if err != nil {
			return err
		}
		fmt.Printf("heuristic mode for this query: %v\n\n", core.ChooseMode(goal, pred))
		return nil
	}
	rel := workload.Relation{Name: "emp", Facts: 4096, Domain: 256, Arity: 3, Seed: 3}
	if err := run("fact-intensive predicate (4096 facts, selective ground probe)", rel.Clauses(), rel.Probe(17)); err != nil {
		return err
	}
	rules := workload.Rules{Name: "fly", Rules: 512, Facts: 512, Seed: 2}
	return run("rule-intensive mixed predicate (512 rules + 512 facts)", rules.Clauses(),
		parse.MustTerm("fly(c7, class0)"))
}

// expW1 sweeps the Warren-scale knowledge base.
func expW1() error {
	w := tab()
	fmt.Fprintln(w, "scale\tpredicates\tclauses\tKB bytes\tprobe candidates\tsim time/probe")
	for _, scale := range []float64{0.0002, 0.0005, 0.001, 0.002, 0.005} {
		wk := workload.WarrenKB{Scale: scale, Seed: 1}
		preds := wk.Generate()
		r, err := core.New(core.DefaultConfig())
		if err != nil {
			return err
		}
		clauses, bytes := 0, 0
		for _, p := range preds {
			pred, err := r.AddClauses("warren", p.Clauses)
			if err != nil {
				return err
			}
			clauses += len(p.Clauses)
			bytes += pred.File.SizeBytes()
		}
		goal := term.New(preds[0].Name, term.Atom("e1"), term.NewVar("V"))
		rt, err := r.Retrieve(goal, core.ModeFS1FS2)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%g\t%d\t%d\t%d\t%d\t%v\n",
			scale, len(preds), clauses, bytes, len(rt.Candidates), rt.Stats.Total.Round(time.Microsecond))
		record("W1", fmt.Sprintf("scale%g_sim_us_per_probe", scale),
			float64(rt.Stats.Total.Microseconds()), "us")
	}
	if err := w.Flush(); err != nil {
		return err
	}
	p, rl, f := (workload.WarrenKB{Scale: 1}).Dimensions()
	fmt.Printf("(paper's full target: %d predicates, %d rules, %d facts, ≈30 MB)\n", p, rl, f)
	return nil
}

// expL15 sweeps the matching levels on a structured workload.
func expL15() error {
	s := workload.Structured{Name: "shape", Facts: 2048, DeepVariety: 3, Seed: 8}
	cls := s.Clauses()
	heads := make([]term.Term, len(cls))
	for i, c := range cls {
		heads[i] = c.Head
	}
	query := term.New("shape",
		term.NewVar("K"),
		term.New("point", term.Int(3), term.NewVar("Y"), term.New("depth", term.Int(1))),
		term.List(term.NewVar("T1"), term.Atom("tag2")))
	type row struct {
		ref ptu.Config
		hw  fs2.Microprogram
	}
	rows := []row{
		{ptu.Config{Level: ptu.Level1}, fs2.MPLevel1},
		{ptu.Config{Level: ptu.Level2}, fs2.MPLevel2},
		{ptu.Config{Level: ptu.Level3}, fs2.MPLevel3},
		{ptu.Config{Level: ptu.Level3, CrossBinding: true}, fs2.MPLevel3XB},
		{ptu.Config{Level: ptu.Level4}, fs2.MPLevel4},
		{ptu.Config{Level: ptu.Level5}, fs2.MPLevel5},
	}
	// The simulated board run per level.
	hwSurvivors := func(mp fs2.Microprogram) (int, error) {
		syms := symtab.New()
		enc := pif.NewEncoder(syms)
		e := fs2.New()
		e.SetMode(fs2.ModeMicroprogramming)
		if err := e.LoadMicroprogram(mp); err != nil {
			return 0, err
		}
		qe, err := enc.Encode(query, pif.QuerySide)
		if err != nil {
			return 0, err
		}
		e.SetMode(fs2.ModeSetQuery)
		if err := e.SetQuery(qe); err != nil {
			return 0, err
		}
		count := 0
		e.SetMode(fs2.ModeSearch)
		for start := 0; start < len(heads); start += fs2.ResultSlots {
			end := start + fs2.ResultSlots
			if end > len(heads) {
				end = len(heads)
			}
			var recs []fs2.Record
			for i := start; i < end; i++ {
				he, err := enc.Encode(heads[i], pif.DBSide)
				if err != nil {
					return 0, err
				}
				recs = append(recs, fs2.Record{Addr: uint32(i), Enc: he})
			}
			res, err := e.Search(recs)
			if err != nil {
				return 0, err
			}
			count += len(res.Matches)
		}
		return count, nil
	}
	w := tab()
	fmt.Fprintln(w, "matching level\treference candidates (of 2048)\tFS2-board candidates\ttrue unifiers\tfalse drops (ref)")
	for _, r := range rows {
		pass, trueU, falseD := ptu.FalseDropRate(query, heads, r.ref)
		hw, err := hwSurvivors(r.hw)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%v\t%d\t%d\t%d\t%d\n", r.ref, pass, hw, trueU, falseD)
	}
	fmt.Fprintln(w, "(paper: levels 4–5 were rejected as too costly in hardware; level 3 + cross binding adopted.")
	fmt.Fprintln(w, " the simulated board runs them anyway — the what-if the 1989 hardware could not afford)")
	return w.Flush()
}

// expB1 runs the PDBM benchmark suite (refs [6,7]): selection scaling,
// join, update and LIPS.
func expB1() error {
	fmt.Println("selection: ground probe vs growing KB (refs [6,7]; the footnote's ≈60k-clause ceiling motivated PDBM):")
	pts, err := pdbmbench.Selection(
		[]int{1024, 4096, 16384},
		[]core.SearchMode{core.ModeSoftware, core.ModeFS1FS2})
	if err != nil {
		return err
	}
	w := tab()
	fmt.Fprintln(w, "clauses\tmode\tcandidates\ttrue\tsim time")
	for _, p := range pts {
		fmt.Fprintf(w, "%d\t%v\t%d\t%d\t%v\n", p.Clauses, p.Mode, p.Candidates, p.TrueUnif, p.SimTime.Round(time.Microsecond))
	}
	if err := w.Flush(); err != nil {
		return err
	}

	jr, err := pdbmbench.Join(512, 32)
	if err != nil {
		return err
	}
	fmt.Printf("\njoin: emp(512) ⋈ dept(32) through the engine: %d answers, %d inferences\n",
		jr.Answers, jr.Inferences)

	ur, err := pdbmbench.Update(1000, 8, 25)
	if err != nil {
		return err
	}
	fmt.Printf("update: %d asserts in %d transactions → %d clauses (indexes rebuilt per commit)\n",
		ur.Asserted, ur.Transactions, ur.FinalClauses)

	lr, err := pdbmbench.NaiveReverse(30, 20)
	if err != nil {
		return err
	}
	fmt.Printf("nrev(30)×20: %d inferences in %v wall — %.0f LIPS (host engine, this machine)\n",
		lr.Inferences, lr.Wall.Round(time.Millisecond), lr.LIPS)
	return nil
}

// expAB1 ablates the mask bits.
func expAB1() error {
	rules := workload.Rules{Name: "fly", Rules: 256, Facts: 256, Seed: 2}
	cls := rules.Clauses()
	goal := parse.MustTerm("fly(c3, class3)")
	w := tab()
	fmt.Fprintln(w, "configuration\tcandidates\tlost true unifiers\tsound")
	for _, mask := range []bool{true, false} {
		enc, err := scw.NewEncoder(scw.Params{Width: 64, BitsPerKey: 3, MaskBits: mask})
		if err != nil {
			return err
		}
		ix := scw.NewIndex(enc)
		for i, c := range cls {
			if err := ix.Add(c.Head, uint32(i)); err != nil {
				return err
			}
		}
		qd, err := enc.EncodeQuery(goal)
		if err != nil {
			return err
		}
		res := ix.Scan(qd)
		surviving := map[uint32]bool{}
		for _, a := range res.Addrs {
			surviving[a] = true
		}
		lost := 0
		for i, c := range cls {
			if unify.Unifiable(goal, term.Rename(c.Head)) && !surviving[uint32(i)] {
				lost++
			}
		}
		label, sound := "SCW+MB (paper)", "YES"
		if !mask {
			label = "plain SCW (no mask bits)"
		}
		if lost > 0 {
			sound = "NO"
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%s\n", label, len(res.Addrs), lost, sound)
	}
	return w.Flush()
}

// expAB2 ablates the double buffer: per-clause pipelined streaming vs
// sequential transfer+match. On the paper's disks the filter outruns the
// disk and matching hides entirely; a hypothetical faster drive shows
// where the overlap starts to pay.
func expAB2() error {
	rel := workload.Relation{Name: "emp", Facts: 4096, Domain: 8, Arity: 3, Seed: 4}
	drives := []disk.Model{
		disk.FujitsuM2351A,
		{Name: "hypothetical 20 MB/s drive", TransferRate: 20e6, TrackBytes: 64 * 1024, RPM: 5400, AvgSeek: 12 * time.Millisecond},
	}
	w := tab()
	fmt.Fprintln(w, "drive\tdouble buffer (overlapped)\tsingle buffer (sequential)\tsaving")
	for _, d := range drives {
		cfg := core.DefaultConfig()
		cfg.Disk = d
		r, err := core.New(cfg)
		if err != nil {
			return err
		}
		if _, err := r.AddClauses("b", rel.Clauses()); err != nil {
			return err
		}
		rt, err := r.Retrieve(rel.Probe(2), core.ModeFS2)
		if err != nil {
			return err
		}
		double := rt.Stats.Total
		single := rt.Stats.DiskFetch + rt.Stats.FS2Match
		fmt.Fprintf(w, "%s\t%v\t%v\t%v (%.1f%%)\n", d.Name,
			double.Round(time.Microsecond), single.Round(time.Microsecond),
			(single - double).Round(time.Microsecond),
			100*float64(single-double)/float64(single))
	}
	fmt.Fprintln(w, "(on the paper's disks matching hides entirely behind the transfer — the §4 design point)")
	return w.Flush()
}

// expWCS assembles the paper's level-3 + cross-binding microprogram into
// its 64-bit WCS image and prints the listing and Map ROM occupancy —
// the host-visible face of §3.1's Writable Control Store.
func expWCS() error {
	prog, err := fs2.Assemble(fs2.MPLevel3XB)
	if err != nil {
		return err
	}
	fmt.Printf("WCS capacity: %d words × %d bits; program %q occupies %d words\n",
		fs2.WCSWords, fs2.MicrowordBits, prog.Name, len(prog.Words))
	fmt.Printf("Map ROM: %d type-pair jump vectors installed\n\n", prog.ROM.Len())
	fmt.Println(prog.Listing())
	return nil
}

// expOPS profiles which of the seven hardware operations each workload
// exercises — the op mix behind Table 1's execution times.
func expOPS() error {
	workloads := []struct {
		label string
		query string
		heads []string
	}{
		{"ground facts (MATCH only)", "p(a, 1)",
			[]string{"p(a, 1)", "p(b, 2)", "p(a, 3)"}},
		{"db variables (stores/fetches)", "p(a, a)",
			[]string{"p(A, A)", "p(A, B)", "p(X, k)"}},
		{"shared query vars (cross binding)", "p(S, S, S)",
			[]string{"p(A, A, c)", "p(x, y, z)", "p(A, b, A)"}},
	}
	order := []fs2.OpCode{fs2.OpMatch, fs2.OpDBStore, fs2.OpQueryStore, fs2.OpDBFetch,
		fs2.OpQueryFetch, fs2.OpDBCrossBoundFetch, fs2.OpQueryCrossBoundFetch}
	w := tab()
	fmt.Fprint(w, "workload")
	for _, op := range order {
		fmt.Fprintf(w, "\t%v", op)
	}
	fmt.Fprintln(w, "\tTUE time")
	for _, wl := range workloads {
		syms := symtab.New()
		enc := pif.NewEncoder(syms)
		e := fs2.New()
		e.SetMode(fs2.ModeMicroprogramming)
		if err := e.LoadMicroprogram(fs2.MPLevel3XB); err != nil {
			return err
		}
		q, err := enc.Encode(parse.MustTerm(wl.query), pif.QuerySide)
		if err != nil {
			return err
		}
		e.SetMode(fs2.ModeSetQuery)
		if err := e.SetQuery(q); err != nil {
			return err
		}
		var recs []fs2.Record
		for i, h := range wl.heads {
			he, err := enc.Encode(parse.MustTerm(h), pif.DBSide)
			if err != nil {
				return err
			}
			recs = append(recs, fs2.Record{Addr: uint32(i), Enc: he})
		}
		e.SetMode(fs2.ModeSearch)
		if _, err := e.Search(recs); err != nil {
			return err
		}
		fmt.Fprintf(w, "%s", wl.label)
		for _, op := range order {
			fmt.Fprintf(w, "\t%d", e.Stats.OpCount(op))
		}
		fmt.Fprintf(w, "\t%v\n", e.Stats.MatchTime)
	}
	return w.Flush()
}

// expCONC sweeps the multi-board chassis: aggregate simulated retrieval
// throughput over the Warren-style KB for 1/2/4/8 boards × 1..16 clients.
// Service times come from real retrievals; the closed-system schedule
// (core.Makespan) turns them into the chassis' aggregate throughput.
// Candidates are verified identical to the single-board serial path.
func expCONC() error {
	const queries = 64
	wk := workload.WarrenKB{Scale: 0.001, Seed: 1}
	preds := wk.Generate()

	build := func(boards int) (*core.Retriever, error) {
		cfg := core.DefaultConfig()
		cfg.Boards = boards
		r, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		for _, p := range preds {
			if _, err := r.AddClauses("warren", p.Clauses); err != nil {
				return nil, err
			}
		}
		return r, nil
	}
	nGoals := len(preds)
	if nGoals > 8 {
		nGoals = 8
	}
	goals := make([]term.Term, nGoals)
	for i := range goals {
		goals[i] = term.New(preds[i].Name, term.Atom("e1"), term.NewVar("V"))
	}

	single, err := build(1)
	if err != nil {
		return err
	}
	reference := make([]string, nGoals)
	for i, g := range goals {
		rt, err := single.Retrieve(g, core.ModeFS1FS2)
		if err != nil {
			return err
		}
		reference[i] = fmt.Sprint(addrList(rt))
	}

	w := tab()
	fmt.Fprintln(w, "boards\tclients\tmakespan (sim)\tsim queries/s\tspeedup")
	var baseline float64
	for _, boards := range []int{1, 2, 4, 8} {
		r, err := build(boards)
		if err != nil {
			return err
		}
		service := make([]time.Duration, queries)
		for i := 0; i < queries; i++ {
			g := i % nGoals
			rt, err := r.Retrieve(goals[g], core.ModeFS1FS2)
			if err != nil {
				return err
			}
			if got := fmt.Sprint(addrList(rt)); got != reference[g] {
				return fmt.Errorf("CONC: boards=%d goal %d: candidates diverge from serial path", boards, g)
			}
			service[i] = rt.Stats.Total
		}
		for _, clients := range []int{1, 2, 4, 8, 16} {
			makespan := core.Makespan(service, boards, clients)
			qps := float64(queries) / makespan.Seconds()
			if boards == 1 && clients == 1 {
				baseline = qps
			}
			fmt.Fprintf(w, "%d\t%d\t%v\t%.1f\t%.2fx\n",
				boards, clients, makespan.Round(time.Millisecond), qps, qps/baseline)
			record("CONC", fmt.Sprintf("boards%d_clients%d_sim_qps", boards, clients), qps, "queries/s")
		}
		noteBoards(boards)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println("(service times measured on real retrievals; schedule is the closed multi-client model)")
	return nil
}

func addrList(rt *core.Retrieval) []uint32 {
	out := make([]uint32, len(rt.Candidates))
	for i, sc := range rt.Candidates {
		out[i] = sc.Addr
	}
	return out
}

// expFLT exercises the fault-injection and degradation machinery across
// the ladder's rungs and proves the retrieval contract — the correct
// unifier set comes back — holds on every one of them.
func expFLT() error {
	const couples, queries = 120, 48
	fam := workload.Family{Couples: couples, SameEvery: 3}
	clauses := fam.Clauses()

	type scenario struct {
		name   string
		boards int
		mode   core.SearchMode
		rules  []fault.Rule
	}
	scenarios := []scenario{
		{"baseline", 2, core.ModeFS1FS2, nil},
		{"board-retry", 2, core.ModeFS2,
			[]fault.Rule{{Site: fault.SiteFS2, Key: "0", Probability: 1}}},
		{"index-down", 2, core.ModeFS1FS2,
			[]fault.Rule{{Site: fault.SiteDiskIndex, Probability: 1}}},
		{"chassis-down", 4, core.ModeFS2,
			[]fault.Rule{{Site: fault.SiteFS2, Probability: 1}}},
		{"flaky-all", 4, core.ModeFS1FS2,
			[]fault.Rule{
				{Site: fault.SiteFS2, Probability: 0.3},
				{Site: fault.SiteDiskRead, Probability: 0.1},
				{Site: fault.SiteBus, Probability: 0.1},
			}},
	}

	w := tab()
	fmt.Fprintln(w, "scenario\tretrievals\tfaults\tretries\tdegraded fs2\tdegraded host\ttripped\tcorrect")
	var totalDegraded, totalRetries float64
	for _, sc := range scenarios {
		cfg := core.DefaultConfig()
		cfg.Boards = sc.boards
		cfg.RetryBackoff = time.Microsecond
		cfg.ProbePeriod = time.Hour // no re-admission mid-experiment
		if len(sc.rules) > 0 {
			inj := fault.New(1989)
			for _, rule := range sc.rules {
				inj.Add(rule)
			}
			cfg.Faults = inj
		}
		r, err := core.New(cfg)
		if err != nil {
			return err
		}
		if _, err := r.AddClauses("family", clauses); err != nil {
			return err
		}
		var faults, retries, degFS2, degHost, correct int
		for i := 0; i < queries; i++ {
			goal := parse.MustTerm(fmt.Sprintf("married_couple(husband%d, X)", i%couples))
			rt, err := r.Retrieve(goal, sc.mode)
			if err != nil {
				return fmt.Errorf("FLT %s: query %d: %v", sc.name, i, err)
			}
			faults += rt.Stats.Faults
			retries += rt.Stats.Retries
			switch rt.Stats.Degraded {
			case "fs2":
				degFS2++
			case "host":
				degHost++
			}
			trueU, _, err := rt.Evaluate()
			if err != nil {
				return err
			}
			if trueU == 1 {
				correct++
			}
		}
		if correct != queries {
			return fmt.Errorf("FLT %s: only %d/%d retrievals returned the true unifier", sc.name, correct, queries)
		}
		h := r.Health()
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d/%d\n",
			sc.name, queries, faults, retries, degFS2, degHost, h.Tripped, correct, queries)
		record("FLT", sc.name+"_faults", float64(faults), "faults")
		record("FLT", sc.name+"_degraded", float64(degFS2+degHost), "retrievals")
		record("FLT", sc.name+"_retries", float64(retries), "attempts")
		totalDegraded += float64(degFS2 + degHost)
		totalRetries += float64(retries)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	record("FLT", "degraded", totalDegraded, "retrievals")
	record("FLT", "retries", totalRetries, "attempts")
	fmt.Println("(every scenario returns the full true-unifier set; degradation trades time, never answers)")
	return nil
}
