package main

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"clare/internal/cluster"
	"clare/internal/core"
	"clare/internal/crs"
	"clare/internal/telemetry"
	"clare/internal/term"
	"clare/internal/workload"
)

// expCLUSTER evaluates the sharded cluster layer in two parts.
//
// Throughput: the same queueing model as CONC (measured per-retrieval
// service times fed through the makespan simulator), extended with the
// cluster's shard assignment — each backend chassis has one board, so a
// retrieval occupies its predicate's shard for the service time while
// other shards serve other predicates. Aggregate throughput then scales
// with the shard count up to the placement balance of the rendezvous
// hash.
//
// Availability: a real 4-shard × 2-replica cluster of in-process crsd
// backends behind a real router, with one replica hard-killed (open
// connections and all) midway through a concurrent retrieval run. The
// run must finish with zero client-visible errors; the absorbed deaths
// are visible as clare_cluster_failovers_total and failover-annotated
// router trace spans.
func expCLUSTER() error {
	const (
		nPreds  = 24
		facts   = 120
		queries = 480
		clients = 16
	)
	preds := make([]workload.Predicate, nPreds)
	for i := range preds {
		rel := workload.Relation{
			Name: fmt.Sprintf("cpred%d", i), Facts: facts, Domain: 30, Arity: 2, Seed: int64(i + 1),
		}
		preds[i] = workload.Predicate{Name: rel.Name, Clauses: rel.Clauses()}
	}

	// Measure per-predicate service times on one chassis.
	single, err := core.New(core.DefaultConfig())
	if err != nil {
		return err
	}
	for _, p := range preds {
		if _, err := single.AddClauses("cluster", p.Clauses); err != nil {
			return err
		}
	}
	service := make([]time.Duration, nPreds)
	for i, p := range preds {
		rt, err := single.Retrieve(term.New(p.Name, term.Atom("e1"), term.NewVar("V")), core.ModeFS1FS2)
		if err != nil {
			return err
		}
		service[i] = rt.Stats.Total
	}

	w := tab()
	fmt.Fprintln(w, "shards\tmakespan (sim)\tsim queries/s\tspeedup")
	var baseline time.Duration
	var speedup4 float64
	for _, shards := range []int{1, 2, 4, 8} {
		span := clusterMakespan(service, queries, clients, shards)
		qps := float64(queries) / span.Seconds()
		if shards == 1 {
			baseline = span
		}
		sp := float64(baseline) / float64(span)
		if shards == 4 {
			speedup4 = sp
		}
		fmt.Fprintf(w, "%d\t%v\t%.0f\t%.2fx\n", shards, span, qps, sp)
		record("CLUSTER", fmt.Sprintf("qps_%dshards", shards), qps, "queries/s")
		record("CLUSTER", fmt.Sprintf("speedup_%dshards", shards), sp, "x")
		noteShards(shards)
	}
	w.Flush()
	if speedup4 < 3 {
		return fmt.Errorf("CLUSTER: 4-shard speedup %.2fx, want >= 3x", speedup4)
	}
	fmt.Printf("\n4-shard aggregate throughput %.2fx a single chassis (>= 3x required)\n", speedup4)

	return clusterAvailability(preds)
}

// clusterMakespan replays the CONC queueing model with the cluster's
// shard assignment: client c issues query i when its previous one
// finishes, and the query occupies the one board of the shard owning
// its predicate. Service times index by predicate; queries walk the
// predicates round-robin.
func clusterMakespan(service []time.Duration, queries, clients, shards int) time.Duration {
	clientFree := make([]time.Duration, clients)
	shardFree := make([]time.Duration, shards)
	var makespan time.Duration
	for i := 0; i < queries; i++ {
		p := i % len(service)
		s := cluster.ShardOf(fmt.Sprintf("cpred%d/2", p), shards)
		start := clientFree[i%clients]
		if shardFree[s] > start {
			start = shardFree[s]
		}
		end := start + service[p]
		clientFree[i%clients] = end
		shardFree[s] = end
		if end > makespan {
			makespan = end
		}
	}
	return makespan
}

// clusterAvailability runs the kill-one-replica drill against a real
// wire-level cluster.
func clusterAvailability(preds []workload.Predicate) error {
	const (
		shards   = 4
		replicas = 2
		workers  = 8
		perW     = 40
	)
	// Partition the predicates exactly as kbc -shards would and boot
	// two identical replicas per shard group.
	addrs := make([][]string, shards)
	listeners := make([][]net.Listener, shards)
	servers := make([][]*crs.Server, shards)
	for s := 0; s < shards; s++ {
		for rep := 0; rep < replicas; rep++ {
			r, err := core.New(core.DefaultConfig())
			if err != nil {
				return err
			}
			for i, p := range preds {
				if cluster.ShardOf(fmt.Sprintf("cpred%d/2", i), shards) != s {
					continue
				}
				if _, err := r.AddClauses("cluster", p.Clauses); err != nil {
					return err
				}
			}
			cs := crs.NewServer(r)
			// Register the retriever's predicates with the server — the
			// in-process equivalent of crsd -kb.
			if err := cs.Adopt(); err != nil {
				return err
			}
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			go cs.Serve(l)
			addrs[s] = append(addrs[s], l.Addr().String())
			listeners[s] = append(listeners[s], l)
			servers[s] = append(servers[s], cs)
		}
	}
	defer func() {
		for _, ls := range listeners {
			for _, l := range ls {
				l.Close()
			}
		}
	}()

	reg := telemetry.NewRegistry()
	// Ring deep enough to keep every trace of the run — the failovers
	// happen early and must still be inspectable at the end.
	tracer := telemetry.NewTracer(workers * perW)
	router, err := cluster.NewRouter(cluster.Config{
		Shards:        addrs,
		WireTimeout:   2 * time.Second,
		CallTimeout:   2 * time.Second,
		TripThreshold: 2,
		ProbePeriod:   30 * time.Second,
		Metrics:       reg,
		Tracer:        tracer,
	})
	if err != nil {
		return err
	}
	defer router.Close()

	// Kill shard 0's first replica once the run is underway: stop
	// accepting and force-close every open connection.
	var started, errorsSeen atomic.Int64
	killed := make(chan struct{})
	go func() {
		for started.Load() < workers*perW/4 {
			time.Sleep(time.Millisecond)
		}
		listeners[0][0].Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		defer cancel()
		servers[0][0].Shutdown(ctx) //nolint:errcheck // deadline abort is the point
		close(killed)
	}()

	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				started.Add(1)
				p := (wk*perW + i) % len(preds)
				goal := fmt.Sprintf("cpred%d(e1, V)", p)
				if _, err := router.Retrieve("auto", goal); err != nil {
					errorsSeen.Add(1)
					fmt.Printf("  client error: %v\n", err)
				}
			}
		}(wk)
	}
	wg.Wait()
	<-killed

	failovers := router.Failovers()
	fmt.Printf("\navailability: %d retrievals across %d workers, 1 of %d replicas hard-killed mid-run\n",
		workers*perW, workers, shards*replicas)
	fmt.Printf("client-visible errors: %d (0 required)\n", errorsSeen.Load())
	fmt.Printf("replica failovers absorbed: %d\n", failovers)
	record("CLUSTER", "availability_errors", float64(errorsSeen.Load()), "errors")
	record("CLUSTER", "availability_failovers", float64(failovers), "failovers")
	noteShards(shards)
	noteBoards(shards * replicas)

	if errorsSeen.Load() != 0 {
		return fmt.Errorf("CLUSTER: %d client-visible errors during replica kill", errorsSeen.Load())
	}
	if failovers == 0 {
		return fmt.Errorf("CLUSTER: replica kill absorbed without any recorded failover")
	}
	// The absorbed kill must be observable: the per-shard failover
	// counter moved and at least one router trace span is annotated
	// with the failover count.
	var counterSeen bool
	for _, sv := range reg.Gather() {
		if sv.Name == "clare_cluster_failovers_total" && sv.Value > 0 {
			counterSeen = true
		}
	}
	if !counterSeen {
		return fmt.Errorf("CLUSTER: clare_cluster_failovers_total did not move")
	}
	var spanSeen bool
	for _, trc := range tracer.Last(workers * perW) {
		for _, sp := range trc.Spans {
			if sp.Attrs["failovers"] != "" {
				spanSeen = true
			}
		}
	}
	if !spanSeen {
		return fmt.Errorf("CLUSTER: no router trace span carries a failover annotation")
	}
	fmt.Println("failovers visible in clare_cluster_failovers_total and router trace spans")
	return nil
}
