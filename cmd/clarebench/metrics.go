package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Metric is one machine-readable result: experiments record the same
// headline numbers they print, so the perf trajectory can be tracked
// across commits by diffing BENCH_*.json files.
type Metric struct {
	Experiment string  `json:"experiment"`
	Name       string  `json:"name"`
	Value      float64 `json:"value"`
	Unit       string  `json:"unit,omitempty"`
}

var recorded []Metric

// record appends one metric to the run's machine-readable output.
func record(exp, name string, value float64, unit string) {
	recorded = append(recorded, Metric{Experiment: exp, Name: name, Value: value, Unit: unit})
}

// benchReport is the BENCH_*.json document.
type benchReport struct {
	Generated string   `json:"generated"`
	Command   string   `json:"command"`
	Metrics   []Metric `json:"metrics"`
}

// writeJSON writes the recorded metrics to path.
func writeJSON(path string) error {
	rep := benchReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Command:   fmt.Sprintf("clarebench %v", os.Args[1:]),
		Metrics:   recorded,
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
