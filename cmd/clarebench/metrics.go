package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"clare/internal/telemetry"
)

// Metric is one machine-readable result: experiments record the same
// headline numbers they print, so the perf trajectory can be tracked
// across commits by diffing BENCH_*.json files.
type Metric struct {
	Experiment string  `json:"experiment"`
	Name       string  `json:"name"`
	Value      float64 `json:"value"`
	Unit       string  `json:"unit,omitempty"`
}

// benchRegistry backs record(): results live as gauge series in a
// telemetry registry (family clarebench_result, one series per
// experiment/name pair), and writeJSON re-reads them through Gather —
// the same export path a live server's /metrics uses.
var benchRegistry = telemetry.NewRegistry()

// record appends one metric to the run's machine-readable output.
func record(exp, name string, value float64, unit string) {
	benchRegistry.Gauge("clarebench_result", "clarebench experiment results",
		telemetry.Labels{"experiment": exp, "name": name, "unit": unit}).Set(value)
}

// recordedCount reports how many results the registry holds.
func recordedCount() int {
	n := 0
	for _, sv := range benchRegistry.Gather() {
		if sv.Name == "clarebench_result" {
			n++
		}
	}
	return n
}

// Run stamp: the git revision the numbers came from plus the largest
// chassis (boards) and cluster (shards) the run exercised, so a
// BENCH_*.json is attributable when it is diffed across commits.
var (
	stampMu      sync.Mutex
	stampBoards  int
	stampShards  int
	stampEngines = map[string]bool{}
)

// noteBoards records the largest board count an experiment ran with.
func noteBoards(n int) {
	stampMu.Lock()
	if n > stampBoards {
		stampBoards = n
	}
	stampMu.Unlock()
}

// noteShards records the largest cluster shard count an experiment ran
// with.
func noteShards(n int) {
	stampMu.Lock()
	if n > stampShards {
		stampShards = n
	}
	stampMu.Unlock()
}

// noteEngine records an execution engine an experiment ran on. Runs that
// never call it report the default, ["sim"] — every experiment runs the
// simulation unless it says otherwise.
func noteEngine(name string) {
	stampMu.Lock()
	stampEngines[name] = true
	stampMu.Unlock()
}

// gitSHA resolves the working tree's short revision; empty when the
// binary runs outside a git checkout.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// benchReport is the BENCH_*.json document. Degraded and Retries summarise
// the run's fault tolerance at the top level (summed over every recorded
// "degraded"/"retries" metric), so trajectory diffs spot a regression in
// the degradation machinery without walking the metric list. GoVersion,
// GOMAXPROCS and Engines stamp the runtime the numbers came from: wall-
// clock metrics (unit wall-queries/s) are only comparable across runs on
// the same toolchain and core count, and benchgate loosens its threshold
// for them accordingly.
type benchReport struct {
	Generated  string   `json:"generated"`
	Command    string   `json:"command"`
	GitSHA     string   `json:"git_sha,omitempty"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Engines    []string `json:"engines"`
	Boards     int      `json:"boards,omitempty"`
	Shards     int      `json:"shards,omitempty"`
	Degraded   float64  `json:"degraded"`
	Retries    float64  `json:"retries"`
	Metrics    []Metric `json:"metrics"`
}

// writeJSON writes the recorded metrics to path in registration order.
func writeJSON(path string) error {
	var metrics []Metric
	var degraded, retries float64
	for _, sv := range benchRegistry.Gather() {
		if sv.Name != "clarebench_result" {
			continue
		}
		m := Metric{
			Experiment: sv.Labels["experiment"],
			Name:       sv.Labels["name"],
			Value:      sv.Value,
			Unit:       sv.Labels["unit"],
		}
		switch m.Name {
		case "degraded":
			degraded += m.Value
		case "retries":
			retries += m.Value
		}
		metrics = append(metrics, m)
	}
	stampMu.Lock()
	boards, shards := stampBoards, stampShards
	engines := make([]string, 0, len(stampEngines))
	for name := range stampEngines {
		engines = append(engines, name)
	}
	stampMu.Unlock()
	if len(engines) == 0 {
		engines = []string{"sim"}
	}
	sort.Strings(engines)
	rep := benchReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Command:    fmt.Sprintf("clarebench %v", os.Args[1:]),
		GitSHA:     gitSHA(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Engines:    engines,
		Boards:     boards,
		Shards:     shards,
		Degraded:   degraded,
		Retries:    retries,
		Metrics:    metrics,
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
