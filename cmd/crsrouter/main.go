// Command crsrouter is the cluster front-end: it scatter-gathers the
// CRS wire protocol across a set of sharded, replicated crsd backends.
// Clients (crsctl, crs.Client, PDBM) speak to it exactly as to a single
// crsd — the protocol is unchanged; the router decides which shard
// group owns each goal's predicate (the same rendezvous shard function
// kbc -shards partitions with), fails over between a shard's replicas
// when one dies, and merges fan-out results in shard order.
//
// Usage:
//
//	crsrouter -addr :7070 \
//	    -shard 127.0.0.1:7071,127.0.0.1:7081 \
//	    -shard 127.0.0.1:7072,127.0.0.1:7082
//
// Each -shard names one shard group as a comma-separated replica list,
// in shard order — the order must match the kbc -shards build. The
// FIRST address in each list is the shard's write primary: WRITE
// (autocommit assert/retract) and pass-through transactions route to it
// alone, and the router ships its write-ahead log to the remaining
// replicas (disable with -no-replicate). A replica trailing the primary
// by more than -max-lag records is demoted in the retrieval failover
// order until it catches up.
//
// Replica selection is load-aware: within a shard group healthy
// replicas are ranked by outstanding load × observed service time
// (native-engine backends, discovered through a STATS probe when a
// connection is first armed, start with a faster prior). -hedge arms
// request hedging: a retrieval still unanswered past its predicate's
// observed P99 (floored at -hedge-floor) is duplicated to the runner-up
// replica and the first answer wins, the loser being cancelled —
// tail-latency insurance against one slow replica. Hedge traffic shows
// up as cluster.hedges / cluster.hedge.wins in STATS.
//
// The admin listener serves /metrics (clare_cluster_* and the Prometheus
// base set), /trace?n=K (router span trees) and /debug/pprof; -admin ""
// disables it. SIGINT/SIGTERM drain: new connections are refused and
// in-flight sessions get -drain to finish before being force-closed.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"clare/internal/cluster"
	"clare/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	admin := flag.String("admin", "", "admin HTTP address for /metrics, /trace and /debug/pprof (empty disables)")
	drain := flag.Duration("drain", 10*time.Second, "shutdown grace period for in-flight sessions")
	traces := flag.Int("traces", telemetry.DefaultTraceRing, "routed-retrieval traces kept for /trace")
	traceBuf := flag.Int("trace-buf", 0, "trace ring capacity (overrides -traces when set)")
	wireTimeout := flag.Duration("wire-timeout", cluster.DefaultWireTimeout, "backend dial and wire operation bound")
	callTimeout := flag.Duration("call-timeout", cluster.DefaultCallTimeout, "per-backend request budget before failover (negative disables)")
	trip := flag.Int("trip", cluster.DefaultTripThreshold, "consecutive failures that trip a backend out of rotation")
	probe := flag.Duration("probe", cluster.DefaultProbePeriod, "tripped-backend cool-off before probationary re-admission")
	pool := flag.Int("pool", cluster.DefaultPoolSize, "idle connections kept per backend")
	maxLag := flag.Uint64("max-lag", cluster.DefaultMaxLag, "log records a replica may trail its primary before it is demoted as stale")
	shipEvery := flag.Duration("ship-interval", cluster.DefaultShipInterval, "idle log-shipping period per replica (writes wake shippers early)")
	noRepl := flag.Bool("no-replicate", false, "disable primary-to-replica log shipping (backends sync some other way)")
	hedge := flag.Bool("hedge", false, "hedge slow retrievals: duplicate to a second replica past the predicate's P99 budget, first answer wins")
	hedgeFloor := flag.Duration("hedge-floor", cluster.DefaultHedgeFloor, "minimum hedge budget (cold predicates never hedge earlier)")
	latWindow := flag.Int("latency-window", 0, "latency samples kept per predicate and per backend for quantiles (0 = default)")
	var shardSpecs multiFlag
	flag.Var(&shardSpecs, "shard", "one shard group as comma-separated replica addresses, in shard order (repeatable)")
	flag.Parse()
	if len(shardSpecs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: crsrouter [-addr host:port] -shard host:port[,host:port...] [-shard ...]")
		os.Exit(2)
	}

	cfg := cluster.Config{
		WireTimeout:   *wireTimeout,
		CallTimeout:   *callTimeout,
		TripThreshold: *trip,
		ProbePeriod:   *probe,
		PoolSize:      *pool,
		MaxLag:        *maxLag,
		ShipInterval:  *shipEvery,
		Hedge:         *hedge,
		HedgeFloor:    *hedgeFloor,
		LatencyWindow: *latWindow,
		Metrics:       telemetry.NewRegistry(),
		Tracer:        telemetry.NewTracer(*traces),
	}
	for _, spec := range shardSpecs {
		var replicas []string
		for _, a := range strings.Split(spec, ",") {
			if a = strings.TrimSpace(a); a != "" {
				replicas = append(replicas, a)
			}
		}
		cfg.Shards = append(cfg.Shards, replicas)
	}
	if *traceBuf > 0 {
		cfg.Tracer.Resize(*traceBuf)
	}
	router, err := cluster.NewRouter(cfg)
	if err != nil {
		fatal("%v", err)
	}
	defer router.Close()
	if !*noRepl {
		router.StartReplication()
		fmt.Printf("log shipping armed: primary = first address per -shard, max lag %d, interval %s\n",
			*maxLag, *shipEvery)
	}
	if *hedge {
		fmt.Printf("request hedging armed: duplicate past per-predicate P99 (floor %s)\n", *hedgeFloor)
	}
	srv := cluster.NewServer(router)

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("crsrouter listening on %s (%d shards, %d replicas)\n",
		l.Addr(), router.Shards(), router.Replicas())

	var adminSrv *http.Server
	if *admin != "" {
		al, err := net.Listen("tcp", *admin)
		if err != nil {
			fatal("admin: %v", err)
		}
		adminSrv = &http.Server{Handler: telemetry.AdminMux(cfg.Metrics, cfg.Tracer, router.Latency())}
		fmt.Printf("crsrouter admin on http://%s/metrics\n", al.Addr())
		go func() {
			if err := adminSrv.Serve(al); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "crsrouter: admin: %v\n", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	select {
	case err := <-serveErr:
		fatal("serve: %v", err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	fmt.Println("crsrouter: draining...")
	l.Close()
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "crsrouter: drain: %v (connections force-closed)\n", err)
	}
	if adminSrv != nil {
		adminSrv.Close()
	}
	<-serveErr // Serve returns once the listener closes and handlers drain
	fmt.Println("crsrouter: bye")
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "crsrouter: "+format+"\n", args...)
	os.Exit(1)
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, " ") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}
