// Command crsrouter is the cluster front-end: it scatter-gathers the
// CRS wire protocol across a set of sharded, replicated crsd backends.
// Clients (crsctl, crs.Client, PDBM) speak to it exactly as to a single
// crsd — the protocol is unchanged; the router decides which shard
// group owns each goal's predicate (the same rendezvous shard function
// kbc -shards partitions with), fails over between a shard's replicas
// when one dies, and merges fan-out results in shard order.
//
// Usage:
//
//	crsrouter -addr :7070 \
//	    -shard 127.0.0.1:7071,127.0.0.1:7081 \
//	    -shard 127.0.0.1:7072,127.0.0.1:7082
//
// Each -shard names one shard group as a comma-separated replica list,
// in shard order — the order must match the kbc -shards build. The
// FIRST address in each list is the shard's write primary: WRITE
// (autocommit assert/retract) and pass-through transactions route to it
// alone, and the router ships its write-ahead log to the remaining
// replicas (disable with -no-replicate). A replica trailing the primary
// by more than -max-lag records is demoted in the retrieval failover
// order until it catches up.
//
// Replica selection is load-aware: within a shard group healthy
// replicas are ranked by outstanding load × observed service time
// (native-engine backends, discovered through a STATS probe when a
// connection is first armed, start with a faster prior). -hedge arms
// request hedging: a retrieval still unanswered past its predicate's
// observed P99 (floored at -hedge-floor) is duplicated to the runner-up
// replica and the first answer wins, the loser being cancelled —
// tail-latency insurance against one slow replica. Hedge traffic shows
// up as cluster.hedges / cluster.hedge.wins in STATS.
//
// The admin listener serves /metrics (clare_cluster_* and the Prometheus
// base set), /trace?n=K (router span trees) and /debug/pprof; -admin ""
// disables it. SIGINT/SIGTERM drain: new connections are refused and
// in-flight sessions get -drain to finish before being force-closed.
//
// Observability mirrors crsd: -flight sizes the router's own flight
// recorder (one record per routed retrieval with the routing decision,
// the merged candidate funnel and the hedge flag; FLIGHT wire verb and
// /flight endpoint; -flight-snap snapshots it on SIGTERM and SLO
// breach), -slo arms the router's end-to-end burn-rate accounting, and
// STATS overlays a cluster-wide burn recomputed from the backends'
// summed SLO windows (cluster.slo.burn.*). SLOWLOG scatter-gathers the
// backends' slow-query captures. -log-level/-log-json shape the
// structured event log on stdout.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"clare/internal/cluster"
	"clare/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	admin := flag.String("admin", "", "admin HTTP address for /metrics, /trace and /debug/pprof (empty disables)")
	drain := flag.Duration("drain", 10*time.Second, "shutdown grace period for in-flight sessions")
	traces := flag.Int("traces", telemetry.DefaultTraceRing, "routed-retrieval traces kept for /trace")
	traceBuf := flag.Int("trace-buf", 0, "trace ring capacity (overrides -traces when set)")
	wireTimeout := flag.Duration("wire-timeout", cluster.DefaultWireTimeout, "backend dial and wire operation bound")
	callTimeout := flag.Duration("call-timeout", cluster.DefaultCallTimeout, "per-backend request budget before failover (negative disables)")
	trip := flag.Int("trip", cluster.DefaultTripThreshold, "consecutive failures that trip a backend out of rotation")
	probe := flag.Duration("probe", cluster.DefaultProbePeriod, "tripped-backend cool-off before probationary re-admission")
	pool := flag.Int("pool", cluster.DefaultPoolSize, "idle connections kept per backend")
	maxLag := flag.Uint64("max-lag", cluster.DefaultMaxLag, "log records a replica may trail its primary before it is demoted as stale")
	shipEvery := flag.Duration("ship-interval", cluster.DefaultShipInterval, "idle log-shipping period per replica (writes wake shippers early)")
	noRepl := flag.Bool("no-replicate", false, "disable primary-to-replica log shipping (backends sync some other way)")
	hedge := flag.Bool("hedge", false, "hedge slow retrievals: duplicate to a second replica past the predicate's P99 budget, first answer wins")
	hedgeFloor := flag.Duration("hedge-floor", cluster.DefaultHedgeFloor, "minimum hedge budget (cold predicates never hedge earlier)")
	latWindow := flag.Int("latency-window", 0, "latency samples kept per predicate and per backend for quantiles (0 = default)")
	flightN := flag.Int("flight", telemetry.DefaultFlightSize, "flight-recorder ring size: routed-retrieval records kept for FLIGHT//flight (0 disables)")
	flightSnap := flag.String("flight-snap", "", "file the flight ring snapshots to on SIGTERM and SLO breach (empty disables snapshots)")
	sloSpec := flag.String("slo", "", "service-level objective over routed retrievals, e.g. p99=10ms,err=0.1%")
	logLevel := flag.String("log-level", "info", "event-log level: debug, info, warn or error")
	logJSON := flag.Bool("log-json", false, "emit the event log as JSON objects instead of logfmt lines")
	var shardSpecs multiFlag
	flag.Var(&shardSpecs, "shard", "one shard group as comma-separated replica addresses, in shard order (repeatable)")
	flag.Parse()
	if len(shardSpecs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: crsrouter [-addr host:port] -shard host:port[,host:port...] [-shard ...]")
		os.Exit(2)
	}

	logg := telemetry.NewLogger(os.Stdout, telemetry.ParseLevel(*logLevel), *logJSON).With("daemon", "crsrouter")

	cfg := cluster.Config{
		WireTimeout:   *wireTimeout,
		CallTimeout:   *callTimeout,
		TripThreshold: *trip,
		ProbePeriod:   *probe,
		PoolSize:      *pool,
		MaxLag:        *maxLag,
		ShipInterval:  *shipEvery,
		Hedge:         *hedge,
		HedgeFloor:    *hedgeFloor,
		LatencyWindow: *latWindow,
		Metrics:       telemetry.NewRegistry(),
		Tracer:        telemetry.NewTracer(*traces),
	}
	for _, spec := range shardSpecs {
		var replicas []string
		for _, a := range strings.Split(spec, ",") {
			if a = strings.TrimSpace(a); a != "" {
				replicas = append(replicas, a)
			}
		}
		cfg.Shards = append(cfg.Shards, replicas)
	}
	if *traceBuf > 0 {
		cfg.Tracer.Resize(*traceBuf)
	}
	if *flightN > 0 {
		cfg.Flight = telemetry.NewFlightRecorder(*flightN)
	}
	var sloT *telemetry.SLOTracker
	if *sloSpec != "" {
		slo, err := telemetry.ParseSLO(*sloSpec)
		if err != nil {
			fatal("%v", err)
		}
		sloT = telemetry.NewSLOTracker(slo)
		sloT.Instrument(cfg.Metrics)
		cfg.SLO = sloT
		logg.Info("slo armed", "objective", slo.String())
	}
	snapshotFlight := func() {
		if *flightSnap == "" || cfg.Flight == nil {
			return
		}
		if err := cfg.Flight.SnapshotToFile(*flightSnap); err != nil {
			logg.Error("flight snapshot failed", "path", *flightSnap, "error", err)
		} else {
			logg.Info("flight snapshot written", "path", *flightSnap, "recorded", cfg.Flight.Recorded())
		}
	}
	if sloT != nil {
		sloT.OnBreach = func(burn float64) {
			logg.Error("slo breach", "burn", fmt.Sprintf("%.1f", burn))
			snapshotFlight()
		}
	}
	router, err := cluster.NewRouter(cfg)
	if err != nil {
		fatal("%v", err)
	}
	defer router.Close()
	if !*noRepl {
		router.StartReplication()
		logg.Info("log shipping armed", "primary", "first address per -shard", "max_lag", *maxLag, "interval", *shipEvery)
	}
	if *hedge {
		logg.Info("request hedging armed", "budget", "per-predicate P99", "floor", *hedgeFloor)
	}
	srv := cluster.NewServer(router)

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("%v", err)
	}
	logg.Info("listening", "addr", l.Addr(), "shards", router.Shards(), "replicas", router.Replicas())

	var adminSrv *http.Server
	if *admin != "" {
		al, err := net.Listen("tcp", *admin)
		if err != nil {
			fatal("admin: %v", err)
		}
		adminSrv = &http.Server{Handler: telemetry.NewAdminMux(telemetry.AdminConfig{
			Registry: cfg.Metrics,
			Tracer:   cfg.Tracer,
			Latency:  router.Latency(),
			Flight:   cfg.Flight,
			SLO:      sloT,
		})}
		logg.Info("admin listening", "url", fmt.Sprintf("http://%s/metrics", al.Addr()))
		go func() {
			if err := adminSrv.Serve(al); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "crsrouter: admin: %v\n", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	select {
	case err := <-serveErr:
		fatal("serve: %v", err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	logg.Info("draining")
	l.Close()
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		logg.Warn("drain expired; connections force-closed", "error", err)
	}
	if adminSrv != nil {
		adminSrv.Close()
	}
	<-serveErr // Serve returns once the listener closes and handlers drain
	snapshotFlight()
	logg.Info("bye")
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "crsrouter: "+format+"\n", args...)
	os.Exit(1)
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, " ") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}
