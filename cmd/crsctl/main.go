// Command crsctl is a command-line client for the Clause Retrieval Server
// daemon (crsd): it runs one retrieval and prints the candidate clauses
// and the server's stage statistics.
//
// Usage:
//
//	crsctl -addr 127.0.0.1:7071 -mode fs1+fs2 'married_couple(S, S)'
//	crsctl -explain 'married_couple(S, S)'
//	crsctl -assert 'married_couple(romeo, juliet)'
//	crsctl -retract 'married_couple(romeo, juliet)'
//
// -assert and -retract ride the autocommit WRITE verb, which works
// unchanged against a single crsd (durable when it runs with -wal-dir)
// and against a crsrouter front-end (routed to the owning shard's
// primary and shipped to its replicas). -assert-tx stages the clause in
// an explicit BEGIN/ASSERT/COMMIT transaction instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"clare/internal/crs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7071", "crsd address")
	mode := flag.String("mode", "auto", "search mode: software|fs1|fs2|fs1+fs2|auto")
	assert := flag.String("assert", "", "clause to assert through the autocommit write path instead of querying")
	retract := flag.String("retract", "", "clause to retract (first match) through the autocommit write path")
	assertTx := flag.String("assert-tx", "", "clause to assert in an explicit transaction instead of querying")
	stats := flag.Bool("stats", false, "print the server's service counters and exit")
	explain := flag.Bool("explain", false, "profile the retrieval instead of printing candidates")
	timeout := flag.Duration("timeout", crs.DefaultTimeout, "per-operation wire timeout (0 disables)")
	flag.Parse()

	c, err := crs.DialTimeout(*addr, *timeout)
	if err != nil {
		fatal("%v", err)
	}
	defer c.Close()

	if *stats {
		kv, err := c.Stats()
		if err != nil {
			fatal("%v", err)
		}
		printStats(kv)
		return
	}

	if *assert != "" {
		seq, err := c.AssertNow(strings.TrimSuffix(*assert, "."))
		if err != nil {
			fatal("assert: %v", err)
		}
		fmt.Printf("asserted (seq %d).\n", seq)
		return
	}

	if *retract != "" {
		seq, err := c.Retract(strings.TrimSuffix(*retract, "."))
		if err != nil {
			fatal("retract: %v", err)
		}
		fmt.Printf("retracted (seq %d).\n", seq)
		return
	}

	if *assertTx != "" {
		if err := c.Begin(); err != nil {
			fatal("begin: %v", err)
		}
		if err := c.Assert(*assertTx); err != nil {
			fatal("assert: %v", err)
		}
		if err := c.Commit(); err != nil {
			fatal("commit: %v", err)
		}
		fmt.Println("committed.")
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: crsctl [-addr a] [-mode m] [-explain] 'goal(...)'  |  crsctl -assert|-retract 'clause'")
		os.Exit(2)
	}

	if *explain {
		res, err := c.Explain(*mode, flag.Arg(0))
		if err != nil {
			fatal("%v", err)
		}
		printExplain(res)
		return
	}

	res, err := c.Retrieve(*mode, flag.Arg(0))
	if err != nil {
		fatal("%v", err)
	}
	for _, cl := range res.Clauses {
		fmt.Println(cl)
	}
	fmt.Println("% " + res.Stats)
}

// printExplain renders the EXPLAIN profile in wire order (the filter
// pipeline's), with a blank line between key families so the rungs read
// as sections.
func printExplain(res *crs.ExplainResult) {
	prev := ""
	for _, e := range res.Entries {
		family, _, _ := strings.Cut(e.Key, ".")
		if prev != "" && family != prev {
			fmt.Println()
		}
		prev = family
		fmt.Printf("%-24s %s\n", e.Key, e.Value)
	}
}

// statsSections groups the known service-counter families for
// rendering. Keys no section recognises — e.g. cluster.* overlay keys a
// newer router may add — are NOT dropped: they land in a sorted "other"
// section at the end.
var statsSections = []struct {
	title string
	match func(k string) bool
}{
	{"service", func(k string) bool {
		switch k {
		case "sessions", "boards", "degraded", "retries", "faults":
			return true
		}
		return false
	}},
	{"served", func(k string) bool { return strings.HasPrefix(k, "served.") }},
	{"boards", func(k string) bool { return strings.HasPrefix(k, "boards.") }},
	{"qcache", func(k string) bool { return strings.HasPrefix(k, "qcache.") }},
	{"plan", func(k string) bool { return strings.HasPrefix(k, "plan.") }},
	{"latency", func(k string) bool { return strings.HasPrefix(k, "latency.") }},
	{"wal", func(k string) bool { return strings.HasPrefix(k, "wal.") }},
	{"cluster", func(k string) bool { return strings.HasPrefix(k, "cluster.") }},
}

func printStats(kv map[string]int64) {
	taken := make(map[string]bool, len(kv))
	section := func(title string, keys []string) {
		if len(keys) == 0 {
			return
		}
		sort.Strings(keys)
		fmt.Printf("[%s]\n", title)
		for _, k := range keys {
			fmt.Printf("%-24s %d\n", k, kv[k])
		}
	}
	for _, s := range statsSections {
		var keys []string
		for k := range kv {
			if !taken[k] && s.match(k) {
				taken[k] = true
				keys = append(keys, k)
			}
		}
		section(s.title, keys)
	}
	var other []string
	for k := range kv {
		if !taken[k] {
			other = append(other, k)
		}
	}
	section("other", other)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "crsctl: "+format+"\n", args...)
	os.Exit(1)
}
