// Command crsctl is a command-line client for the Clause Retrieval Server
// daemon (crsd): it runs one retrieval and prints the candidate clauses
// and the server's stage statistics.
//
// Usage:
//
//	crsctl -addr 127.0.0.1:7071 -mode fs1+fs2 'married_couple(S, S)'
//	crsctl -explain 'married_couple(S, S)'
//	crsctl -assert 'married_couple(romeo, juliet)'
//	crsctl -retract 'married_couple(romeo, juliet)'
//
// -assert and -retract ride the autocommit WRITE verb, which works
// unchanged against a single crsd (durable when it runs with -wal-dir)
// and against a crsrouter front-end (routed to the owning shard's
// primary and shipped to its replicas). -assert-tx stages the clause in
// an explicit BEGIN/ASSERT/COMMIT transaction instead.
//
// Diagnosis commands:
//
//	crsctl -flight 20          # newest flight-recorder records
//	crsctl -slow-tail 5        # newest slow-query captures with profiles
//	crsctl -slo                # SLO burn-rate summary from STATS
//
// All three work against crsd and crsrouter alike — against the router,
// -flight shows the routing-level records and -slo the cluster-wide
// burn recomputed from the backends' summed SLO windows.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"clare/internal/crs"
	"clare/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7071", "crsd address")
	mode := flag.String("mode", "auto", "search mode: software|fs1|fs2|fs1+fs2|auto")
	assert := flag.String("assert", "", "clause to assert through the autocommit write path instead of querying")
	retract := flag.String("retract", "", "clause to retract (first match) through the autocommit write path")
	assertTx := flag.String("assert-tx", "", "clause to assert in an explicit transaction instead of querying")
	stats := flag.Bool("stats", false, "print the server's service counters and exit")
	explain := flag.Bool("explain", false, "profile the retrieval instead of printing candidates")
	flight := flag.Int("flight", -1, "print the newest N flight-recorder records and exit (0 = all)")
	slowTail := flag.Int("slow-tail", -1, "print the newest N slow-query captures and exit (0 = all)")
	slo := flag.Bool("slo", false, "print the server's SLO burn-rate summary and exit")
	timeout := flag.Duration("timeout", crs.DefaultTimeout, "per-operation wire timeout (0 disables)")
	flag.Parse()

	c, err := crs.DialTimeout(*addr, *timeout)
	if err != nil {
		fatal("%v", err)
	}
	defer c.Close()

	if *stats {
		kv, err := c.Stats()
		if err != nil {
			fatal("%v", err)
		}
		printStats(kv)
		return
	}

	if *flight >= 0 {
		recs, err := c.Flight(*flight)
		if err != nil {
			fatal("flight: %v", err)
		}
		printFlight(recs)
		return
	}

	if *slowTail >= 0 {
		caps, err := c.SlowTail(*slowTail)
		if err != nil {
			fatal("slowlog: %v", err)
		}
		printSlowTail(caps)
		return
	}

	if *slo {
		kv, err := c.Stats()
		if err != nil {
			fatal("%v", err)
		}
		printSLO(kv)
		return
	}

	if *assert != "" {
		seq, err := c.AssertNow(strings.TrimSuffix(*assert, "."))
		if err != nil {
			fatal("assert: %v", err)
		}
		fmt.Printf("asserted (seq %d).\n", seq)
		return
	}

	if *retract != "" {
		seq, err := c.Retract(strings.TrimSuffix(*retract, "."))
		if err != nil {
			fatal("retract: %v", err)
		}
		fmt.Printf("retracted (seq %d).\n", seq)
		return
	}

	if *assertTx != "" {
		if err := c.Begin(); err != nil {
			fatal("begin: %v", err)
		}
		if err := c.Assert(*assertTx); err != nil {
			fatal("assert: %v", err)
		}
		if err := c.Commit(); err != nil {
			fatal("commit: %v", err)
		}
		fmt.Println("committed.")
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: crsctl [-addr a] [-mode m] [-explain] 'goal(...)'  |  crsctl -assert|-retract 'clause'")
		os.Exit(2)
	}

	if *explain {
		res, err := c.Explain(*mode, flag.Arg(0))
		if err != nil {
			fatal("%v", err)
		}
		printExplain(res)
		return
	}

	res, err := c.Retrieve(*mode, flag.Arg(0))
	if err != nil {
		fatal("%v", err)
	}
	for _, cl := range res.Clauses {
		fmt.Println(cl)
	}
	fmt.Println("% " + res.Stats)
}

// printExplain renders the EXPLAIN profile in wire order (the filter
// pipeline's), with a blank line between key families so the rungs read
// as sections.
func printExplain(res *crs.ExplainResult) {
	prev := ""
	for _, e := range res.Entries {
		family, _, _ := strings.Cut(e.Key, ".")
		if prev != "" && family != prev {
			fmt.Println()
		}
		prev = family
		fmt.Printf("%-24s %s\n", e.Key, e.Value)
	}
}

// statsSections groups the known service-counter families for
// rendering. Keys no section recognises — e.g. cluster.* overlay keys a
// newer router may add — are NOT dropped: they land in a sorted "other"
// section at the end.
var statsSections = []struct {
	title string
	match func(k string) bool
}{
	{"service", func(k string) bool {
		switch k {
		case "sessions", "boards", "degraded", "retries", "faults":
			return true
		}
		return false
	}},
	{"served", func(k string) bool { return strings.HasPrefix(k, "served.") }},
	{"boards", func(k string) bool { return strings.HasPrefix(k, "boards.") }},
	{"qcache", func(k string) bool { return strings.HasPrefix(k, "qcache.") }},
	{"plan", func(k string) bool { return strings.HasPrefix(k, "plan.") }},
	{"latency", func(k string) bool { return strings.HasPrefix(k, "latency.") }},
	{"wal", func(k string) bool { return strings.HasPrefix(k, "wal.") }},
	{"flight", func(k string) bool { return strings.HasPrefix(k, "flight.") }},
	{"slow", func(k string) bool { return strings.HasPrefix(k, "slow.") }},
	{"slo", func(k string) bool { return strings.HasPrefix(k, "slo.") }},
	{"cluster", func(k string) bool { return strings.HasPrefix(k, "cluster.") }},
}

func printStats(kv map[string]int64) {
	taken := make(map[string]bool, len(kv))
	section := func(title string, keys []string) {
		if len(keys) == 0 {
			return
		}
		sort.Strings(keys)
		fmt.Printf("[%s]\n", title)
		for _, k := range keys {
			fmt.Printf("%-24s %d\n", k, kv[k])
		}
	}
	for _, s := range statsSections {
		var keys []string
		for k := range kv {
			if !taken[k] && s.match(k) {
				taken[k] = true
				keys = append(keys, k)
			}
		}
		section(s.title, keys)
	}
	var other []string
	for k := range kv {
		if !taken[k] {
			other = append(other, k)
		}
	}
	section("other", other)
}

// printFlight renders flight-recorder records one per line, newest
// last: sequence, start time, predicate, mode, the candidate funnel
// (total→fs1→fs2), wall time and the optional decision/flag columns.
func printFlight(recs []telemetry.FlightRecord) {
	if len(recs) == 0 {
		fmt.Println("flight recorder empty (is the server running with -flight?)")
		return
	}
	for _, r := range recs {
		line := fmt.Sprintf("#%-6d %s  %-20s %-8s %6d→%d→%d  %8s",
			r.Seq, time.Unix(0, r.TS).Format("15:04:05.000"), r.Predicate, r.Mode,
			r.Total, r.AfterFS1, r.AfterFS2,
			time.Duration(r.WallNS).Round(time.Microsecond))
		if r.Plan != "" {
			line += "  plan=" + r.Plan
		}
		if r.Shape != "" {
			line += "  shape=" + r.Shape
		}
		if r.TraceID != 0 {
			line += fmt.Sprintf("  trace=%016x", r.TraceID)
		}
		if r.Degraded != "" {
			line += "  degraded=" + r.Degraded
		}
		if r.Faults > 0 {
			line += fmt.Sprintf("  faults=%d", r.Faults)
		}
		if r.Hedged {
			line += "  hedged"
		}
		fmt.Println(line)
	}
}

// printSlowTail renders slow-query captures oldest first, each with its
// captured EXPLAIN profile indented under the header line.
func printSlowTail(caps []telemetry.SlowCapture) {
	if len(caps) == 0 {
		fmt.Println("slow-query log empty (is the server running with -slow-ms or -slow-p99x?)")
		return
	}
	for i, c := range caps {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("#%d %s  %s  mode=%s  wall=%s  threshold=%s",
			c.Seq, time.Unix(0, c.TS).Format("15:04:05.000"), c.Predicate, c.Mode,
			time.Duration(c.WallNS).Round(time.Microsecond),
			time.Duration(c.ThresholdNS).Round(time.Microsecond))
		if c.TraceID != 0 {
			fmt.Printf("  trace=%016x", c.TraceID)
		}
		fmt.Println()
		fmt.Printf("  goal: %s\n", c.Goal)
		for _, kv := range c.Profile {
			fmt.Printf("  %-24s %s\n", kv.Key, kv.Value)
		}
	}
}

// printSLO renders the slo.* STATS keys as a burn-rate summary — the
// milli-scaled wire integers become decimals again. Works against crsd
// (its own tracker) and crsrouter (cluster-wide recompute) alike.
func printSLO(kv map[string]int64) {
	if kv["slo.enabled"] == 0 {
		fmt.Println("no SLO armed (is the server running with -slo?)")
		return
	}
	obj := []string{}
	if us := kv["slo.p99.us"]; us > 0 {
		obj = append(obj, fmt.Sprintf("p99=%s", time.Duration(us)*time.Microsecond))
	}
	if pm := kv["slo.err.permille"]; pm > 0 {
		obj = append(obj, fmt.Sprintf("err=%.1f%%", float64(pm)/10))
	}
	fmt.Printf("objective    %s\n", strings.Join(obj, ","))
	fmt.Printf("requests     %d  (slow %d, errors %d, breaches %d)\n",
		kv["slo.requests"], kv["slo.slow"], kv["slo.errors"], kv["slo.breaches"])
	fmt.Printf("burn short   %.3f  (%d requests in window)\n",
		float64(kv["slo.burn.short.milli"])/1000, kv["slo.window.short.requests"])
	fmt.Printf("burn long    %.3f  (%d requests in window)\n",
		float64(kv["slo.burn.long.milli"])/1000, kv["slo.window.long.requests"])
	if kv["slo.breach.active"] > 0 {
		fmt.Println("BREACH ACTIVE: short-window burn over the fast-burn threshold")
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "crsctl: "+format+"\n", args...)
	os.Exit(1)
}
