// Command crsctl is a command-line client for the Clause Retrieval Server
// daemon (crsd): it runs one retrieval and prints the candidate clauses
// and the server's stage statistics.
//
// Usage:
//
//	crsctl -addr 127.0.0.1:7071 -mode fs1+fs2 'married_couple(S, S)'
//	crsctl -assert 'married_couple(romeo, juliet)'
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"clare/internal/crs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7071", "crsd address")
	mode := flag.String("mode", "auto", "search mode: software|fs1|fs2|fs1+fs2|auto")
	assert := flag.String("assert", "", "clause to assert in a transaction instead of querying")
	stats := flag.Bool("stats", false, "print the server's service counters and exit")
	timeout := flag.Duration("timeout", crs.DefaultTimeout, "per-operation wire timeout (0 disables)")
	flag.Parse()

	c, err := crs.DialTimeout(*addr, *timeout)
	if err != nil {
		fatal("%v", err)
	}
	defer c.Close()

	if *stats {
		kv, err := c.Stats()
		if err != nil {
			fatal("%v", err)
		}
		// Sorted keys keep the rendering deterministic run to run; the
		// column is wide enough for the router's cluster.* keys.
		keys := make([]string, 0, len(kv))
		for k := range kv {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("%-24s %d\n", k, kv[k])
		}
		return
	}

	if *assert != "" {
		if err := c.Begin(); err != nil {
			fatal("begin: %v", err)
		}
		if err := c.Assert(*assert); err != nil {
			fatal("assert: %v", err)
		}
		if err := c.Commit(); err != nil {
			fatal("commit: %v", err)
		}
		fmt.Println("committed.")
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: crsctl [-addr a] [-mode m] 'goal(...)'  |  crsctl -assert 'clause'")
		os.Exit(2)
	}
	res, err := c.Retrieve(*mode, flag.Arg(0))
	if err != nil {
		fatal("%v", err)
	}
	for _, cl := range res.Clauses {
		fmt.Println(cl)
	}
	fmt.Println("% " + res.Stats)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "crsctl: "+format+"\n", args...)
	os.Exit(1)
}
