// Command prolog is the PDBM substrate's Prolog system: a file consulter
// and interactive top level on the engine package (a Prolog-X–style
// system, §2 of the paper).
//
// Usage:
//
//	prolog [-g goal] [-max n] [file.pl ...]
//
// Files are consulted in order. With -g the goal runs non-interactively
// and solutions print one per line; otherwise goals are read from stdin
// (one per line, no trailing '.', empty line quits).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"clare/internal/engine"
)

func main() {
	goal := flag.String("g", "", "goal to prove (non-interactive)")
	maxSols := flag.Int("max", 0, "maximum solutions to print (0 = all)")
	traceOn := flag.Bool("trace", false, "enable port tracing (CALL/EXIT/REDO/FAIL)")
	flag.Parse()

	m := engine.New()
	if *traceOn {
		m.SetTrace(os.Stderr)
	}
	for _, file := range flag.Args() {
		src, err := os.ReadFile(file)
		if err != nil {
			fatal("reading %s: %v", file, err)
		}
		if err := m.ConsultString(string(src)); err != nil {
			fatal("consulting %s: %v", file, err)
		}
	}

	if *goal != "" {
		if code := runGoal(m, *goal, *maxSols); code != 0 {
			os.Exit(code)
		}
		return
	}

	in := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("?- ")
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(in.Text()), "."))
		if line == "" || line == "halt" {
			return
		}
		runGoal(m, line, *maxSols)
		if halted, code := m.Halted(); halted {
			os.Exit(code)
		}
	}
}

// runGoal proves one goal, printing each solution. Returns a process exit
// code: 0 success, 1 failure, 2 error.
func runGoal(m *engine.Machine, goal string, max int) int {
	sols, err := m.Query(goal, max)
	if err == engine.ErrHalt {
		_, code := m.Halted()
		os.Exit(code)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return 2
	}
	if len(sols) == 0 {
		fmt.Println("no.")
		return 1
	}
	for _, s := range sols {
		fmt.Printf("%v ;\n", s)
	}
	fmt.Println("yes.")
	return 0
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "prolog: "+format+"\n", args...)
	os.Exit(2)
}
