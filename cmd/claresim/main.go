// Command claresim runs queries through the CLARE retrieval pipeline and
// prints per-stage statistics: candidates after FS1 and FS2, false drops,
// simulated stage times and bytes moved — the observable behaviour of the
// §2 architecture on a real clause set.
//
// Usage:
//
//	claresim -kb family.pl [-mode fs1+fs2|fs1|fs2|software|auto|all] 'married_couple(S, S)'
//
// The KB file must hold clauses of a single predicate (use kbgen).
//
// The repeatable -fault flag arms deterministic fault injection
// (site[@key]=P or site[@key]=1/N, seeded by -fault-seed); the output
// then grows faults/retries/degraded columns showing which rung of the
// degradation ladder each retrieval landed on.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"clare/internal/core"
	"clare/internal/crs"
	"clare/internal/fault"
	"clare/internal/parse"
	"clare/internal/plfile"
)

func main() {
	kbFile := flag.String("kb", "", "Prolog file holding one predicate's clauses")
	store := flag.String("store", "", "compiled knowledge-base store (kbc output) instead of -kb")
	modeWord := flag.String("mode", "all", "search mode: software|fs1|fs2|fs1+fs2|auto|all")
	var faultSpecs multiFlag
	flag.Var(&faultSpecs, "fault", "arm a fault-injection rule, site[@key]=P or site[@key]=1/N[,limit=L] (repeatable)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the fault-injection schedule")
	flag.Parse()
	if (*kbFile == "") == (*store == "") || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: claresim (-kb file.pl | -store kb.clare) [-mode m] 'goal(...)'")
		os.Exit(2)
	}

	goal, err := parse.Term(flag.Arg(0))
	if err != nil {
		fatal("parsing goal: %v", err)
	}

	cfg := core.DefaultConfig()
	if len(faultSpecs) > 0 {
		inj := fault.New(*faultSeed)
		for _, spec := range faultSpecs {
			rule, err := fault.ParseRule(spec)
			if err != nil {
				fatal("%v", err)
			}
			inj.Add(rule)
		}
		cfg.Faults = inj
	}

	var r *core.Retriever
	if *store != "" {
		f, err := os.Open(*store)
		if err != nil {
			fatal("%v", err)
		}
		r, err = core.LoadRetriever(cfg, f)
		f.Close()
		if err != nil {
			fatal("loading store: %v", err)
		}
	} else {
		clauses, err := plfile.ReadFile(*kbFile)
		if err != nil {
			fatal("%v", err)
		}
		r, err = core.New(cfg)
		if err != nil {
			fatal("%v", err)
		}
		if _, err := r.AddClauses("kb", clauses); err != nil {
			fatal("loading: %v", err)
		}
	}

	var modes []core.SearchMode
	var auto bool
	switch *modeWord {
	case "all":
		modes = []core.SearchMode{core.ModeSoftware, core.ModeFS1, core.ModeFS2, core.ModeFS1FS2}
	case "auto":
		auto = true
	default:
		m, err := crs.ParseMode(*modeWord)
		if err != nil {
			fatal("%v", err)
		}
		modes = []core.SearchMode{*m}
	}
	if auto {
		pred, err := r.Predicate(goal)
		if err != nil {
			fatal("%v", err)
		}
		m := core.ChooseMode(goal, pred)
		fmt.Printf("heuristic selected mode: %v\n", m)
		modes = []core.SearchMode{m}
	}

	injecting := len(faultSpecs) > 0
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	header := "mode\tclauses\tafter FS1\tafter FS2\ttrue\tfalse drops\tFS1 scan\tdisk\tFS2 match\ttotal (sim)"
	if injecting {
		header += "\tfaults\tretries\tdegraded"
	}
	fmt.Fprintln(w, header)
	for _, m := range modes {
		rt, err := r.Retrieve(goal, m)
		if err != nil {
			fatal("retrieve (%v): %v", m, err)
		}
		trueU, falseD, err := rt.Evaluate()
		if err != nil {
			fatal("%v", err)
		}
		s := rt.Stats
		fmt.Fprintf(w, "%v\t%d\t%d\t%d\t%d\t%d\t%v\t%v\t%v\t%v",
			m, s.TotalClauses, s.AfterFS1, s.AfterFS2, trueU, falseD,
			s.FS1Scan.Round(10e3), s.DiskFetch.Round(10e3), s.FS2Match.Round(10e3), s.Total.Round(10e3))
		if injecting {
			degraded := s.Degraded
			if degraded == "" {
				degraded = "-"
			}
			fmt.Fprintf(w, "\t%d\t%d\t%s", s.Faults, s.Retries, degraded)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "claresim: "+format+"\n", args...)
	os.Exit(1)
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}
