// Command kbc is the knowledge-base compiler: it compiles Prolog predicate
// files into a binary CLARE store (PIF clause files + SCW+MB secondary
// indexes + shared symbol table) that loads without re-parsing — the
// "compiled clause file" path of §2.1.
//
// Usage:
//
//	kbc -o kb.clare family.pl emp.pl     # compile
//	kbc -info kb.clare                   # inspect a store
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"text/tabwriter"

	"clare/internal/core"
	"clare/internal/plfile"
	"clare/internal/term"
)

func main() {
	out := flag.String("o", "kb.clare", "output store file")
	info := flag.String("info", "", "inspect an existing store instead of compiling")
	flag.Parse()

	if *info != "" {
		inspect(*info)
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: kbc -o kb.clare pred1.pl pred2.pl ...  |  kbc -info kb.clare")
		os.Exit(2)
	}

	r, err := core.New(core.DefaultConfig())
	if err != nil {
		fatal("%v", err)
	}
	for _, file := range flag.Args() {
		clauses, err := plfile.ReadFile(file)
		if err != nil {
			fatal("%v", err)
		}
		module := strings.TrimSuffix(filepath.Base(file), filepath.Ext(file))
		pred, err := r.AddClauses(module, clauses)
		if err != nil {
			fatal("compiling %s: %v", file, err)
		}
		fmt.Printf("compiled %s: %d clauses, %d B clause file, %d B index\n",
			file, pred.File.Len(), pred.File.SizeBytes(), pred.File.IndexSizeBytes())
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	if err := r.SaveKB(f); err != nil {
		fatal("writing %s: %v", *out, err)
	}
	st, err := f.Stat()
	if err == nil {
		fmt.Printf("wrote %s (%d bytes)\n", *out, st.Size())
	}
}

func inspect(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	r, err := core.LoadRetriever(core.DefaultConfig(), f)
	if err != nil {
		fatal("loading %s: %v", path, err)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "predicate\tclauses\trules\tmasked\tclause file\tindex")
	for _, pi := range r.Predicates() {
		args := make([]term.Term, pi.Arity)
		for i := range args {
			args[i] = term.NewVar("_")
		}
		pred, err := r.Predicate(term.New(pi.Functor, args...))
		if err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(w, "%s:%v\t%d\t%d\t%d\t%d B\t%d B\n",
			pred.File.Module, pi, pred.File.Len(), pred.RuleCount, pred.MaskedClauses,
			pred.File.SizeBytes(), pred.File.IndexSizeBytes())
	}
	w.Flush()
	fmt.Printf("symbols: %d\n", r.Symbols().Len())
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "kbc: "+format+"\n", args...)
	os.Exit(1)
}
