// Command kbc is the knowledge-base compiler: it compiles Prolog predicate
// files into a binary CLARE store (PIF clause files + SCW+MB secondary
// indexes + shared symbol table) that loads without re-parsing — the
// "compiled clause file" path of §2.1.
//
// Usage:
//
//	kbc -o kb.clare family.pl emp.pl     # compile
//	kbc -info kb.clare                   # inspect a store
//
// Partitioned (cluster) build: -shards N splits the store into N shard
// slices, each holding the predicates the cluster shard function
// (rendezvous hashing by predicate indicator) places there, written as
// shard-<i>.clare under -shard-out. Each slice is an ordinary store —
// crsd -kb loads it unchanged — and carries the full shared symbol
// table, so a crsrouter over the slices answers exactly like one crsd
// over the whole store:
//
//	kbc -shards 4 -shard-out build/ family.pl emp.pl
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"text/tabwriter"

	"clare/internal/cluster"
	"clare/internal/core"
	"clare/internal/plfile"
	"clare/internal/term"
)

func main() {
	out := flag.String("o", "kb.clare", "output store file")
	info := flag.String("info", "", "inspect an existing store instead of compiling")
	shards := flag.Int("shards", 0, "also write a partitioned build with this many shard slices")
	shardOut := flag.String("shard-out", ".", "directory for shard-<i>.clare slices (with -shards)")
	flag.Parse()

	if *info != "" {
		inspect(*info)
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: kbc -o kb.clare pred1.pl pred2.pl ...  |  kbc -info kb.clare")
		os.Exit(2)
	}

	r, err := core.New(core.DefaultConfig())
	if err != nil {
		fatal("%v", err)
	}
	for _, file := range flag.Args() {
		clauses, err := plfile.ReadFile(file)
		if err != nil {
			fatal("%v", err)
		}
		module := strings.TrimSuffix(filepath.Base(file), filepath.Ext(file))
		pred, err := r.AddClauses(module, clauses)
		if err != nil {
			fatal("compiling %s: %v", file, err)
		}
		fmt.Printf("compiled %s: %d clauses, %d B clause file, %d B index\n",
			file, pred.File.Len(), pred.File.SizeBytes(), pred.File.IndexSizeBytes())
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	if err := r.SaveKB(f); err != nil {
		fatal("writing %s: %v", *out, err)
	}
	st, err := f.Stat()
	if err == nil {
		fmt.Printf("wrote %s (%d bytes)\n", *out, st.Size())
	}

	if *shards > 0 {
		if err := writeShards(r, *shards, *shardOut); err != nil {
			fatal("%v", err)
		}
	}
}

// writeShards writes one store slice per shard, selected by the same
// shard function the router routes with.
func writeShards(r *core.Retriever, n int, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		path := filepath.Join(dir, fmt.Sprintf("shard-%d.clare", i))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		kept := 0
		err = r.SaveKBPartition(f, func(pi core.Indicator) bool {
			mine := cluster.ShardOf(pi.String(), n) == i
			if mine {
				kept++
			}
			return mine
		})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing %s: %w", path, err)
		}
		st, err := os.Stat(path)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d predicates (%d bytes)\n", path, kept, st.Size())
	}
	return nil
}

func inspect(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	r, err := core.LoadRetriever(core.DefaultConfig(), f)
	if err != nil {
		fatal("loading %s: %v", path, err)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "predicate\tclauses\trules\tmasked\tclause file\tindex")
	for _, pi := range r.Predicates() {
		args := make([]term.Term, pi.Arity)
		for i := range args {
			args[i] = term.NewVar("_")
		}
		pred, err := r.Predicate(term.New(pi.Functor, args...))
		if err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(w, "%s:%v\t%d\t%d\t%d\t%d B\t%d B\n",
			pred.File.Module, pi, pred.File.Len(), pred.RuleCount, pred.MaskedClauses,
			pred.File.SizeBytes(), pred.File.IndexSizeBytes())
	}
	w.Flush()
	fmt.Printf("symbols: %d\n", r.Symbols().Len())
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "kbc: "+format+"\n", args...)
	os.Exit(1)
}
